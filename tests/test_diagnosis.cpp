// The diagnosis subsystem: syndrome extraction, fault classification and
// the closed diagnose -> classify -> repair -> retest loop.
//
// The acceptance bar: for every supported FaultKind — stuck-at, transition,
// CFin/CFid (with aggressor candidates), address-decoder and DRF-via-NWRC —
// the classifier labels randomized single-fault scenarios correctly at
// >= 95%, and the closed loop ends with zero residual records whenever the
// spare budget covers the defect population.  "Correctly" is lenient in
// exactly one way: kinds the March test provably cannot separate (SA0 vs.
// TF-up when cells initialise to 0, SAF vs. the CFst that pins a cell the
// same way) tie at top confidence, and the truth must be among the tie.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/fastdiag.h"

namespace fastdiag {
namespace {

using diagnosis::FaultClassifier;
using diagnosis::ReadKey;
using faults::FaultInstance;
using faults::FaultKind;
using sram::CellCoord;
using sram::SramConfig;

SramConfig cfg(std::uint32_t words, std::uint32_t bits,
               std::uint32_t spares = 8) {
  SramConfig config;
  config.name = "d" + std::to_string(words) + "x" + std::to_string(bits);
  config.words = words;
  config.bits = bits;
  config.spare_rows = spares;
  return config;
}

CellCoord random_cell(const SramConfig& config, Rng& rng) {
  return {static_cast<std::uint32_t>(rng.uniform(config.words)),
          static_cast<std::uint32_t>(rng.uniform(config.bits))};
}

// ---- syndrome extraction --------------------------------------------------

TEST(Syndromes, FoldRecordsPerCellInMarchOrder) {
  bisd::DiagnosisLog log;
  const auto add = [&log](std::size_t mem, std::uint32_t addr,
                          std::uint32_t bit, std::size_t phase,
                          std::size_t element, std::size_t op,
                          std::uint32_t visit) {
    bisd::DiagnosisRecord record;
    record.memory_index = mem;
    record.addr = addr;
    record.bit = bit;
    record.phase = phase;
    record.element = element;
    record.op = op;
    record.visit = visit;
    log.add(record);
  };
  add(0, 3, 1, 1, 2, 0, 0);
  add(0, 3, 1, 0, 1, 0, 0);  // earlier read, logged later
  add(0, 3, 1, 0, 1, 0, 1);  // wrap revisit of the same read
  add(0, 5, 0, 0, 4, 1, 0);
  add(1, 0, 0, 0, 1, 0, 0);

  const auto syndromes = diagnosis::extract_syndromes(log, 2);
  ASSERT_EQ(syndromes.size(), 2u);
  ASSERT_EQ(syndromes[0].cells.size(), 2u);

  const auto* cell = syndromes[0].find({3, 1});
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->record_count, 3u);
  ASSERT_EQ(cell->failed_reads.size(), 3u);
  // March order: phase, element, visit, op.
  EXPECT_EQ(cell->failed_reads[0], (ReadKey{0, 1, 0, 0}));
  EXPECT_EQ(cell->failed_reads[1], (ReadKey{0, 1, 1, 0}));
  EXPECT_EQ(cell->failed_reads[2], (ReadKey{1, 2, 0, 0}));

  EXPECT_EQ(syndromes[0].row_histogram().at(3), 1u);
  EXPECT_EQ(syndromes[0].find({9, 9}), nullptr);
  EXPECT_EQ(syndromes[1].cells.size(), 1u);
}

TEST(Syndromes, GrowsPastDeclaredMemoryCountWithCorrectIndices) {
  bisd::DiagnosisLog log;
  bisd::DiagnosisRecord record;
  record.memory_index = 3;  // beyond the declared count of 1
  record.addr = 2;
  record.bit = 0;
  log.add(record);

  const auto syndromes = diagnosis::extract_syndromes(log, 1);
  ASSERT_EQ(syndromes.size(), 4u);
  for (std::size_t i = 0; i < syndromes.size(); ++i) {
    EXPECT_EQ(syndromes[i].memory_index, i);
  }
  EXPECT_EQ(syndromes[3].cells.size(), 1u);
}

// ---- classifier: randomized single-fault scenarios ------------------------

/// Diagnoses a single-memory SoC carrying exactly @p fault and classifies
/// the result with @p classifier (shared across scenarios so the signature
/// dictionary warms once).
bool scenario_correct(const SramConfig& config, const FaultInstance& fault,
                      const FaultClassifier& classifier) {
  bisd::SocUnderTest soc;
  soc.add_memory(config, {fault});
  bisd::FastScheme scheme;
  const auto result = scheme.diagnose(soc);
  const auto syndromes = diagnosis::extract_syndromes(result.log, 1);
  const auto classification = classifier.classify(syndromes[0]);
  const auto matrix =
      diagnosis::score_classification({fault}, classification, config);
  return matrix.lenient_accuracy() >= 1.0;
}

TEST(Classifier, LabelsEverySupportedSingleFaultKindAtLeast95Percent) {
  const auto config = cfg(12, 6);
  bisd::FastScheme scheme;
  const FaultClassifier classifier(config,
                                   scheme.test_for_width(config.bits));
  Rng rng(424242);
  constexpr int kTrials = 20;  // >= 19 correct == the 95% bar

  const FaultKind cell_kinds[] = {FaultKind::sa0,  FaultKind::sa1,
                                  FaultKind::tf_up, FaultKind::tf_down,
                                  FaultKind::drf0, FaultKind::drf1};
  for (const auto kind : cell_kinds) {
    int correct = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      correct += scenario_correct(
                     config, faults::make_cell_fault(kind, random_cell(config, rng)),
                     classifier)
                     ? 1
                     : 0;
    }
    EXPECT_GE(correct, 19) << faults::fault_kind_name(kind);
  }

  const FaultKind coupling_kinds[] = {
      FaultKind::cf_in_up,   FaultKind::cf_in_down,  FaultKind::cf_id_up0,
      FaultKind::cf_id_up1,  FaultKind::cf_id_down0, FaultKind::cf_id_down1,
      FaultKind::cf_st_00,   FaultKind::cf_st_01,    FaultKind::cf_st_10,
      FaultKind::cf_st_11};
  for (const auto kind : coupling_kinds) {
    int correct = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      const auto aggressor = random_cell(config, rng);
      auto victim = random_cell(config, rng);
      if (rng.bernoulli(0.5)) {
        victim.row = aggressor.row;  // force the intra-word path
      }
      if (victim == aggressor) {
        victim.bit = (victim.bit + 1) % config.bits;
        if (victim == aggressor) {
          victim.row = (victim.row + 1) % config.words;
        }
      }
      correct += scenario_correct(
                     config,
                     faults::make_coupling_fault(kind, aggressor, victim),
                     classifier)
                     ? 1
                     : 0;
    }
    EXPECT_GE(correct, 19) << faults::fault_kind_name(kind);
  }

  const FaultKind af_kinds[] = {FaultKind::af_no_access,
                                FaultKind::af_wrong_row,
                                FaultKind::af_extra_row};
  for (const auto kind : af_kinds) {
    int correct = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      const auto addr =
          static_cast<std::uint32_t>(rng.uniform(config.words));
      FaultInstance fault;
      if (kind == FaultKind::af_no_access) {
        fault = faults::make_address_fault(kind, addr);
      } else {
        std::uint32_t other =
            static_cast<std::uint32_t>(rng.uniform(config.words - 1));
        if (other >= addr) {
          ++other;
        }
        fault = faults::make_address_fault(kind, addr, other);
      }
      correct += scenario_correct(config, fault, classifier) ? 1 : 0;
    }
    EXPECT_GE(correct, 19) << faults::fault_kind_name(kind);
  }
}

TEST(Classifier, StuckAtZeroAndTfUpTieHonestly) {
  // A cell that never leaves 0 is SA0 or TF-up — no march that initialises
  // to 0 can tell them apart; the verdict must carry both.
  const auto config = cfg(12, 6);
  bisd::FastScheme scheme;
  const FaultClassifier classifier(config,
                                   scheme.test_for_width(config.bits));
  bisd::SocUnderTest soc;
  soc.add_memory(config,
                 {faults::make_cell_fault(FaultKind::sa0, {5, 2})});
  const auto result = scheme.diagnose(soc);
  const auto syndromes = diagnosis::extract_syndromes(result.log, 1);
  const auto classification = classifier.classify(syndromes[0]);
  ASSERT_EQ(classification.sites.size(), 1u);
  const auto top = classification.sites[0].top_kinds();
  EXPECT_NE(std::find(top.begin(), top.end(), FaultKind::sa0), top.end());
  EXPECT_NE(std::find(top.begin(), top.end(), FaultKind::tf_up), top.end());
  EXPECT_DOUBLE_EQ(classification.sites[0].top_confidence(), 1.0);
}

TEST(Classifier, AggressorHintsAdmitTheTrueAggressor) {
  const auto config = cfg(12, 6);
  bisd::FastScheme scheme;
  const FaultClassifier classifier(config,
                                   scheme.test_for_width(config.bits));
  Rng rng(777);
  int hinted = 0;
  constexpr int kTrials = 24;
  for (int trial = 0; trial < kTrials; ++trial) {
    const auto aggressor = random_cell(config, rng);
    auto victim = random_cell(config, rng);
    if (victim == aggressor) {
      victim.bit = (victim.bit + 1) % config.bits;
    }
    const auto fault =
        faults::make_coupling_fault(FaultKind::cf_id_up1, aggressor, victim);
    bisd::SocUnderTest soc;
    soc.add_memory(config, {fault});
    const auto result = bisd::FastScheme().diagnose(soc);
    const auto syndromes = diagnosis::extract_syndromes(result.log, 1);
    const auto classification = classifier.classify(syndromes[0]);
    for (const auto& site : classification.sites) {
      for (const auto& hypothesis : site.hypotheses) {
        if (hypothesis.kind == fault.kind &&
            hypothesis.confidence == site.top_confidence() &&
            hypothesis.aggressor.admits(fault)) {
          ++hinted;
          goto next_trial;
        }
      }
    }
  next_trial:;
  }
  EXPECT_GE(hinted, 23) << "aggressor hints must admit the true aggressor";
}

// ---- confusion matrix -----------------------------------------------------

TEST(ConfusionMatrix, CountsAndAccuracies) {
  faults::ConfusionMatrix matrix;
  matrix.add(FaultKind::sa0, FaultKind::sa0, true);
  matrix.add(FaultKind::tf_up, FaultKind::sa0, true);   // tie, truth in top
  matrix.add(FaultKind::drf0, FaultKind::cf_id_up1, false);
  matrix.add(FaultKind::sa1, std::nullopt, false);      // never surfaced
  matrix.add_spurious(FaultKind::sa0);

  EXPECT_EQ(matrix.truths(), 4u);
  EXPECT_EQ(matrix.missed(), 1u);
  EXPECT_EQ(matrix.spurious(), 1u);
  EXPECT_EQ(matrix.spurious(FaultKind::sa0), 1u);
  EXPECT_EQ(matrix.spurious(FaultKind::sa1), 0u);
  EXPECT_EQ(matrix.count(FaultKind::sa0, FaultKind::sa0), 1u);
  EXPECT_EQ(matrix.count(FaultKind::tf_up, FaultKind::sa0), 1u);
  EXPECT_DOUBLE_EQ(matrix.strict_accuracy(), 0.25);
  EXPECT_DOUBLE_EQ(matrix.lenient_accuracy(), 0.5);
  EXPECT_DOUBLE_EQ(matrix.class_accuracy(FaultKind::tf_up), 1.0);
  EXPECT_DOUBLE_EQ(matrix.class_accuracy(FaultKind::drf0), 0.0);

  faults::ConfusionMatrix other;
  other.add(FaultKind::sa0, FaultKind::sa0, true);
  matrix.merge(other);
  EXPECT_EQ(matrix.truths(), 5u);
  EXPECT_EQ(matrix.count(FaultKind::sa0, FaultKind::sa0), 2u);
  EXPECT_DOUBLE_EQ(matrix.lenient_accuracy(), 0.6);
}

TEST(ConfusionMatrix, StrictNeverExceedsLenient) {
  // A coupling whose kind is the sole top prediction but whose aggressor
  // hint does not admit the truth is not among-top — and must not count as
  // strict-correct either, or "strict" would read above "lenient".
  faults::ConfusionMatrix matrix;
  matrix.add(FaultKind::cf_id_up1, FaultKind::cf_id_up1, false);
  EXPECT_DOUBLE_EQ(matrix.strict_accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(matrix.lenient_accuracy(), 0.0);
  matrix.add(FaultKind::cf_id_up1, FaultKind::cf_id_up1, true);
  EXPECT_DOUBLE_EQ(matrix.strict_accuracy(), 0.5);
  EXPECT_LE(matrix.strict_accuracy(), matrix.lenient_accuracy());
}

// ---- classifier cache -----------------------------------------------------

TEST(ClassifierCache, KeysOnRetentionNotJustGeometry) {
  const auto test = bisd::FastScheme().test_for_width(8);
  diagnosis::ClassifierCache cache;
  diagnosis::ClassifierOptions options;

  auto fast_decay = cfg(16, 8);
  fast_decay.retention_ns = 100;  // decays during the march pauses
  const auto a = cache.get(cfg(16, 8), test, options);
  const auto b = cache.get(fast_decay, test, options);
  const auto c = cache.get(cfg(16, 8), test, options);
  EXPECT_NE(a.get(), b.get())
      << "same geometry, different retention must not share "
         "a signature dictionary";
  EXPECT_EQ(a.get(), c.get())
      << "identical shape must hit the cached classifier";

  auto slow_clock = options;
  slow_clock.clock.period_ns = 100;  // probes elapse on a different timebase
  const auto d = cache.get(cfg(16, 8), test, slow_clock);
  EXPECT_NE(a.get(), d.get())
      << "probe clock is signature-relevant and must key the cache";
}

TEST(ClassifierCache, SharedCacheMatchesLocalClassification) {
  std::vector<SramConfig> configs = {cfg(16, 8), cfg(16, 8), cfg(12, 6)};
  faults::InjectionSpec spec;
  spec.cell_defect_rate = 0.02;
  auto soc = bisd::SocUnderTest::from_injection(configs, spec, 77);
  bisd::FastScheme scheme;
  const auto result = scheme.diagnose(soc);
  const auto syndromes =
      diagnosis::extract_syndromes(result.log, soc.memory_count());
  const auto test = scheme.test_for_width(soc.max_bits());

  const auto local = diagnosis::classify_soc(soc, syndromes, test);
  diagnosis::ClassifierCache cache;
  const auto warm_up = diagnosis::classify_soc(soc, syndromes, test, {}, &cache);
  const auto cached = diagnosis::classify_soc(soc, syndromes, test, {}, &cache);

  ASSERT_EQ(local.memories.size(), cached.memories.size());
  for (std::size_t i = 0; i < local.memories.size(); ++i) {
    EXPECT_EQ(local.memories[i].to_string(), cached.memories[i].to_string());
  }
  EXPECT_DOUBLE_EQ(local.confusion.lenient_accuracy(),
                   cached.confusion.lenient_accuracy());
  EXPECT_EQ(warm_up.memories.size(), cached.memories.size());
}

// ---- closed loop ----------------------------------------------------------

TEST(ClosedLoop, EndsCleanWheneverSparesSuffice) {
  // Heterogeneous SoC (the narrow memory wraps under the controller sweep),
  // spare budget equal to the word count — every faulty row is repairable,
  // so the retest must come back empty.
  for (const std::uint64_t seed : {3ull, 17ull, 91ull, 2026ull}) {
    std::vector<SramConfig> configs = {cfg(16, 10, 16), cfg(8, 6, 8),
                                       cfg(12, 14, 12)};
    faults::InjectionSpec spec;
    spec.cell_defect_rate = 0.03;
    spec.include_retention = true;
    auto soc = bisd::SocUnderTest::from_injection(configs, spec, seed);

    const diagnosis::ResolutionFlow flow;
    const auto report = flow.run(soc);
    EXPECT_TRUE(report.fully_repaired) << "seed " << seed;
    EXPECT_TRUE(report.clean()) << "seed " << seed << ": "
                                << report.residual_records
                                << " residual records";
    EXPECT_EQ(report.classifications.size(), soc.memory_count());
    // Every observed site must receive at least a partial hypothesis.
    for (const auto& memory : report.classifications) {
      EXPECT_EQ(memory.classified_sites(), memory.sites.size());
    }
  }
}

TEST(ClosedLoop, ReportsResidualWhenSpareBudgetExhausted) {
  auto config = cfg(16, 8, /*spares=*/1);
  bisd::SocUnderTest soc;
  soc.add_memory(config,
                 {faults::make_cell_fault(FaultKind::sa0, {2, 1}),
                  faults::make_cell_fault(FaultKind::sa1, {9, 5}),
                  faults::make_cell_fault(FaultKind::tf_down, {13, 0})});
  const diagnosis::ResolutionFlow flow;
  const auto report = flow.run(soc);
  EXPECT_FALSE(report.fully_repaired);
  EXPECT_FALSE(report.clean());
  ASSERT_TRUE(report.repair.has_value());
  EXPECT_EQ(report.repair->unrepaired_row_count(), 2u);
  EXPECT_GT(report.residual_records, 0u);
}

// ---- engine integration ---------------------------------------------------

TEST(Engine, ClassifySpecPopulatesReports) {
  const auto spec = core::SessionSpec::builder()
                        .add_sram(cfg(16, 8))
                        .add_sram(cfg(8, 12))
                        .defect_rate(0.02)
                        .seed(5)
                        .classify(true)
                        .build();
  ASSERT_TRUE(spec.has_value());
  const auto report = core::DiagnosisEngine::execute(spec.value());
  ASSERT_TRUE(report.classification.has_value());
  EXPECT_EQ(report.classification->memories.size(), 2u);
  EXPECT_GT(report.classification->site_count(), 0u);
  EXPECT_GE(report.classification->confusion.lenient_accuracy(), 0.5);
  EXPECT_NE(report.summary().find("classify accuracy"), std::string::npos);

  // Without the flag the outcome stays empty.
  const auto plain = core::SessionSpec::builder()
                         .add_sram(cfg(16, 8))
                         .defect_rate(0.02)
                         .seed(5)
                         .build();
  ASSERT_TRUE(plain.has_value());
  EXPECT_FALSE(core::DiagnosisEngine::execute(plain.value())
                   .classification.has_value());

  // The baseline's pass-attributed log cannot feed the classifier.
  const auto baseline = core::SessionSpec::builder()
                            .add_sram(cfg(16, 8))
                            .defect_rate(0.02)
                            .seed(5)
                            .scheme("baseline")
                            .classify(true)
                            .build();
  ASSERT_TRUE(baseline.has_value());
  EXPECT_FALSE(core::DiagnosisEngine::execute(baseline.value())
                   .classification.has_value());
}

TEST(Engine, AggregateReportCarriesClassificationStats) {
  core::SweepSpec sweep;
  sweep.base = core::SessionSpec::builder()
                   .add_sram(cfg(12, 6))
                   .defect_rate(0.03)
                   .classify(true);
  sweep.seeds = {1, 2, 3};
  const core::DiagnosisEngine engine({.workers = 1});
  const auto batch = engine.run_sweep(sweep);
  ASSERT_TRUE(batch.has_value());
  const auto stats = batch.value().classification_accuracy_stats();
  EXPECT_GT(stats.mean, 0.0);
  EXPECT_NE(batch.value().summary().find("classify accuracy"),
            std::string::npos);
}

TEST(Engine, ClassificationIsDeterministicAcrossWorkerCounts) {
  // Workers share one ClassifierCache per batch; the verdicts must not
  // depend on which thread warmed which dictionary.
  core::SweepSpec sweep;
  sweep.base = core::SessionSpec::builder()
                   .add_sram(cfg(16, 8))
                   .add_sram(cfg(8, 12))
                   .defect_rate(0.03)
                   .classify(true);
  sweep.seeds = {1, 2, 3, 4, 5, 6};
  const auto serial = core::DiagnosisEngine({.workers = 1}).run_sweep(sweep);
  const auto threaded = core::DiagnosisEngine({.workers = 4}).run_sweep(sweep);
  ASSERT_TRUE(serial.has_value());
  ASSERT_TRUE(threaded.has_value());
  ASSERT_EQ(serial.value().runs.size(), threaded.value().runs.size());
  for (std::size_t i = 0; i < serial.value().runs.size(); ++i) {
    const auto& a = serial.value().runs[i];
    const auto& b = threaded.value().runs[i];
    ASSERT_EQ(a.classification.has_value(), b.classification.has_value());
    EXPECT_EQ(a.summary(), b.summary());
    ASSERT_TRUE(a.classification.has_value());
    ASSERT_EQ(a.classification->memories.size(),
              b.classification->memories.size());
    for (std::size_t m = 0; m < a.classification->memories.size(); ++m) {
      EXPECT_EQ(a.classification->memories[m].to_string(),
                b.classification->memories[m].to_string());
    }
  }
}

// ---- bit-sliced dictionary builds -----------------------------------------
//
// The packed builder must be a pure performance transformation: for every
// syndrome, classification through a bit_sliced dictionary must equal the
// per_candidate reference byte for byte (the per-site to_string dump covers
// kinds, confidences, placements and aggressor candidate bits).

diagnosis::MemoryClassification classify_single_fault(
    const FaultClassifier& classifier, const SramConfig& config,
    const FaultInstance& fault) {
  bisd::SocUnderTest soc;
  soc.add_memory(config, {fault});
  bisd::FastScheme scheme;
  const auto result = scheme.diagnose(soc);
  const auto syndromes = diagnosis::extract_syndromes(result.log, 1);
  return classifier.classify(syndromes[0]);
}

std::vector<FaultInstance> build_kind_corpus(const SramConfig& config,
                                             Rng& rng, int per_kind) {
  std::vector<FaultInstance> corpus;
  const FaultKind cell_kinds[] = {FaultKind::sa0,   FaultKind::sa1,
                                  FaultKind::tf_up, FaultKind::tf_down,
                                  FaultKind::sof,   FaultKind::drf0,
                                  FaultKind::drf1};
  for (const auto kind : cell_kinds) {
    for (int t = 0; t < per_kind; ++t) {
      corpus.push_back(
          faults::make_cell_fault(kind, random_cell(config, rng)));
    }
  }
  const FaultKind coupling_kinds[] = {
      FaultKind::cf_in_up,   FaultKind::cf_in_down,  FaultKind::cf_id_up0,
      FaultKind::cf_id_up1,  FaultKind::cf_id_down0, FaultKind::cf_id_down1,
      FaultKind::cf_st_00,   FaultKind::cf_st_01,    FaultKind::cf_st_10,
      FaultKind::cf_st_11};
  for (const auto kind : coupling_kinds) {
    for (int t = 0; t < per_kind; ++t) {
      const auto aggressor = random_cell(config, rng);
      auto victim = random_cell(config, rng);
      if (rng.bernoulli(0.5)) {
        victim.row = aggressor.row;  // force the intra-word path
      }
      if (victim == aggressor) {
        victim.bit = (victim.bit + 1) % config.bits;
        if (victim == aggressor) {
          victim.row = (victim.row + 1) % config.words;
        }
      }
      corpus.push_back(faults::make_coupling_fault(kind, aggressor, victim));
    }
  }
  const FaultKind af_kinds[] = {FaultKind::af_no_access,
                                FaultKind::af_wrong_row,
                                FaultKind::af_extra_row};
  for (const auto kind : af_kinds) {
    for (int t = 0; t < per_kind; ++t) {
      const auto addr =
          static_cast<std::uint32_t>(rng.uniform(config.words));
      if (kind == FaultKind::af_no_access) {
        corpus.push_back(faults::make_address_fault(kind, addr));
        continue;
      }
      std::uint32_t other =
          static_cast<std::uint32_t>(rng.uniform(config.words - 1));
      if (other >= addr) {
        ++other;
      }
      corpus.push_back(faults::make_address_fault(kind, addr, other));
    }
  }
  return corpus;
}

TEST(BitSliced, VerdictsIdenticalToPerCandidateAcrossKindCorpus) {
  // Even and odd IO widths: the odd width exercises the packing plan's
  // round-robin bye column.
  for (const auto& config : {cfg(12, 6), cfg(9, 5)}) {
    bisd::FastScheme scheme;
    const auto test = scheme.test_for_width(config.bits);
    diagnosis::ClassifierOptions reference_options;
    reference_options.build_mode =
        diagnosis::DictionaryBuildMode::per_candidate;
    diagnosis::ClassifierOptions sliced_options;
    sliced_options.build_mode = diagnosis::DictionaryBuildMode::bit_sliced;
    const FaultClassifier reference(config, test, reference_options);
    const FaultClassifier sliced(config, test, sliced_options);

    Rng rng(20260730);
    const int per_kind = config.bits % 2 == 0 ? 6 : 3;
    for (const auto& fault : build_kind_corpus(config, rng, per_kind)) {
      const auto expected =
          classify_single_fault(reference, config, fault).to_string();
      const auto actual =
          classify_single_fault(sliced, config, fault).to_string();
      EXPECT_EQ(expected, actual)
          << config.name << " fault: " << fault.to_string();
    }
  }
}

TEST(BitSliced, VerdictsIdenticalUnderWrapAround) {
  // A 6-word memory swept by a 16-step controller wraps with remainder 4,
  // so dictionaries key on exact rows and the partial-wrap boundary gets
  // its own aggressor representatives — the wrap-side packing plan.
  const auto wide = cfg(16, 8);
  const auto narrow = cfg(6, 4);
  bisd::FastScheme scheme;
  const auto test = scheme.test_for_width(wide.bits);
  diagnosis::ClassifierOptions reference_options;
  reference_options.build_mode =
      diagnosis::DictionaryBuildMode::per_candidate;
  reference_options.global_words = wide.words;
  diagnosis::ClassifierOptions sliced_options;
  sliced_options.build_mode = diagnosis::DictionaryBuildMode::bit_sliced;
  sliced_options.global_words = wide.words;
  const FaultClassifier reference(narrow, test, reference_options);
  const FaultClassifier sliced(narrow, test, sliced_options);

  Rng rng(20260731);
  for (const auto& fault : build_kind_corpus(narrow, rng, 3)) {
    bisd::SocUnderTest soc;
    soc.add_memory(wide);
    soc.add_memory(narrow, {fault});
    const auto result = bisd::FastScheme().diagnose(soc);
    const auto syndromes = diagnosis::extract_syndromes(result.log, 2);
    EXPECT_EQ(reference.classify(syndromes[1]).to_string(),
              sliced.classify(syndromes[1]).to_string())
        << "fault: " << fault.to_string();
  }
}

TEST(BitSliced, CacheStatsCountBuildsAndSharing) {
  const auto config = cfg(12, 6);
  bisd::FastScheme scheme;
  const auto test = scheme.test_for_width(config.bits);
  diagnosis::ClassifierCache cache;
  diagnosis::ClassifierOptions options;  // instance_sliced default

  const auto first = cache.get(config, test, options);
  const auto again = cache.get(config, test, options);
  EXPECT_EQ(first.get(), again.get());
  auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.slab_lanes, 0u);  // dictionaries build lazily

  const auto fault = faults::make_cell_fault(FaultKind::sa1, {5, 2});
  (void)classify_single_fault(*first, config, fault);
  stats = cache.stats();
  EXPECT_GT(stats.dictionary_keys, 0u);
  // The default instance_sliced mode replays the cell plan as slab lanes —
  // up to 64 per batch — instead of one-by-one probe replays.
  EXPECT_GT(stats.slab_lanes, 0u);
  EXPECT_GT(stats.slab_batches, 0u);
  EXPECT_LE(stats.slab_batches, (stats.slab_lanes + 63) / 64);
  EXPECT_GE(stats.build_seconds, 0.0);

  // A second classification of the same shape hits the dictionary cache.
  const auto replays = stats.probe_replays;
  const auto lanes = stats.slab_lanes;
  (void)classify_single_fault(*first, config, fault);
  EXPECT_EQ(cache.stats().probe_replays, replays);
  EXPECT_EQ(cache.stats().slab_lanes, lanes);

  // Build modes must not share classifiers (different dictionaries paths).
  diagnosis::ClassifierOptions reference_options = options;
  reference_options.build_mode =
      diagnosis::DictionaryBuildMode::per_candidate;
  const auto reference = cache.get(config, test, reference_options);
  EXPECT_NE(first.get(), reference.get());
}

// ---- instance-sliced dictionary builds ------------------------------------
//
// The instance_sliced mode composes the bit_sliced packing with 64-lane
// probe slabs; like bit_sliced it must be a pure performance transformation.
// The snapshot comparisons below are the strongest possible form: the
// exported dictionaries — every slot of every key — must compare equal
// across all three build modes, at every SIMD dispatch level this CPU runs.

std::vector<simd::IsaLevel> available_levels() {
  std::vector<simd::IsaLevel> levels{simd::IsaLevel::scalar};
  if (simd::detected_level() >= simd::IsaLevel::avx2) {
    levels.push_back(simd::IsaLevel::avx2);
  }
  if (simd::detected_level() >= simd::IsaLevel::avx512) {
    levels.push_back(simd::IsaLevel::avx512);
  }
  return levels;
}

/// Restores the pre-test dispatch level when a level sweep exits.
class LevelGuard {
 public:
  LevelGuard() : saved_(simd::active_level()) {}
  ~LevelGuard() { simd::force(saved_); }
  LevelGuard(const LevelGuard&) = delete;
  LevelGuard& operator=(const LevelGuard&) = delete;

 private:
  simd::IsaLevel saved_;
};

/// Classifies one fabricated single-cell syndrome per dictionary key so
/// every mode's lazy cache fills completely: the sliced modes batch-fill
/// all keys on first touch, per_candidate needs each key requested.
void warm_all_cell_keys(const FaultClassifier& classifier,
                        const SramConfig& config,
                        std::uint32_t global_words = 0) {
  std::vector<std::uint32_t> rows;
  if (global_words > config.words) {
    for (std::uint32_t row = 0; row < config.words; ++row) {
      rows.push_back(row);  // wrapped keys are per exact row
    }
  } else {
    rows.push_back(0);
    if (config.words >= 3) {
      rows.push_back(config.words / 2);
    }
    if (config.words >= 2) {
      rows.push_back(config.words - 1);
    }
  }
  for (const auto row : rows) {
    for (std::uint32_t bit = 0; bit < config.bits; ++bit) {
      diagnosis::MemorySyndrome syndrome;
      syndrome.cells.push_back({{row, bit}, {}, 0});
      (void)classifier.classify(syndrome);
    }
  }
}

TEST(InstanceSliced, DictionariesByteIdenticalAcrossModesAndIsaLevels) {
  // Even and odd IO widths (the odd width exercises the packing plan's
  // round-robin bye column and the slab's partial-limb tails).
  for (const auto& config : {cfg(12, 6), cfg(9, 5)}) {
    bisd::FastScheme scheme;
    const auto test = scheme.test_for_width(config.bits);
    diagnosis::ClassifierOptions options;
    options.build_mode = diagnosis::DictionaryBuildMode::per_candidate;
    const FaultClassifier reference(config, test, options);
    warm_all_cell_keys(reference, config);
    const auto want = reference.export_dictionaries();
    ASSERT_FALSE(want.cells.empty());

    options.build_mode = diagnosis::DictionaryBuildMode::bit_sliced;
    const FaultClassifier bit_sliced(config, test, options);
    warm_all_cell_keys(bit_sliced, config);
    EXPECT_TRUE(want == bit_sliced.export_dictionaries()) << config.name;

    LevelGuard guard;
    for (const auto level : available_levels()) {
      ASSERT_TRUE(simd::force(level));
      options.build_mode = diagnosis::DictionaryBuildMode::instance_sliced;
      const FaultClassifier instance(config, test, options);
      warm_all_cell_keys(instance, config);
      EXPECT_TRUE(want == instance.export_dictionaries())
          << config.name << " at " << simd::isa_name(level);
      EXPECT_GT(instance.dictionary_stats().slab_lanes, 0u);
    }
  }
}

TEST(InstanceSliced, DictionariesByteIdenticalUnderWrapAround) {
  // A 6-word memory swept by a 16-step controller: wrapped builds key per
  // exact row and replay with the golden-shadow expectation, so the probe
  // batches run the wrap demux path too.
  const auto narrow = cfg(6, 4);
  const std::uint32_t sweep = 16;
  bisd::FastScheme scheme;
  const auto test = scheme.test_for_width(8);
  diagnosis::ClassifierOptions options;
  options.global_words = sweep;
  options.build_mode = diagnosis::DictionaryBuildMode::per_candidate;
  const FaultClassifier reference(narrow, test, options);
  warm_all_cell_keys(reference, narrow, sweep);
  const auto want = reference.export_dictionaries();
  ASSERT_FALSE(want.cells.empty());

  options.build_mode = diagnosis::DictionaryBuildMode::bit_sliced;
  const FaultClassifier bit_sliced(narrow, test, options);
  warm_all_cell_keys(bit_sliced, narrow, sweep);
  EXPECT_TRUE(want == bit_sliced.export_dictionaries());

  options.build_mode = diagnosis::DictionaryBuildMode::instance_sliced;
  const FaultClassifier instance(narrow, test, options);
  warm_all_cell_keys(instance, narrow, sweep);
  EXPECT_TRUE(want == instance.export_dictionaries());
}

TEST(InstanceSliced, VerdictsIdenticalToBothModesAcrossKindCorpus) {
  const auto config = cfg(12, 6);
  bisd::FastScheme scheme;
  const auto test = scheme.test_for_width(config.bits);
  diagnosis::ClassifierOptions options;
  options.build_mode = diagnosis::DictionaryBuildMode::per_candidate;
  const FaultClassifier reference(config, test, options);
  options.build_mode = diagnosis::DictionaryBuildMode::bit_sliced;
  const FaultClassifier bit_sliced(config, test, options);
  options.build_mode = diagnosis::DictionaryBuildMode::instance_sliced;
  const FaultClassifier instance(config, test, options);

  Rng rng(20260807);
  for (const auto& fault : build_kind_corpus(config, rng, 3)) {
    const auto expected =
        classify_single_fault(reference, config, fault).to_string();
    EXPECT_EQ(expected,
              classify_single_fault(instance, config, fault).to_string())
        << "fault: " << fault.to_string();
    EXPECT_EQ(expected,
              classify_single_fault(bit_sliced, config, fault).to_string())
        << "fault: " << fault.to_string();
  }
}

}  // namespace
}  // namespace fastdiag
