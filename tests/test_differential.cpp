// Randomized differential tests between the diagnosis architectures
// (test_kernel.cpp style: hundreds of seeded random fault mixes and
// geometries, bit-exact comparisons).
//
// Oracles, strongest to weakest:
//  * The wrap-emulating MarchRunner is an *exact* oracle for the fast
//    scheme: for every memory of any SoC, the sorted suspect-cell set the
//    scheme logs must equal the runner's — the SPC/PSC delivery, the
//    batched serialization and the controller's wrap-around addressing must
//    all be transparent.  This holds for every fault family, SOF and DRF
//    included.
//  * The reconstructed baseline localizes through the memory cells, so its
//    per-cell candidates may land on fill-corrupted neighbours inside a
//    faulty row (see baseline_scheme.h); its complete, repeatable guarantee
//    is the *row* set, and only for populations its serial passes fully
//    expose: stuck-at / transition faults, at most one fault per row, and
//    spares to repair past every find.  Coupling and address faults are
//    exposed differently by the two architectures by design (the fast
//    scheme's single-run completeness vs. iterative peeling) — that
//    difference is the paper's point, not a bug, so they are excluded here
//    and covered by the runner oracle above.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "core/fastdiag.h"

namespace fastdiag {
namespace {

using faults::FaultInstance;
using faults::FaultKind;
using sram::CellCoord;
using sram::SramConfig;

SramConfig cfg(const std::string& name, std::uint32_t words,
               std::uint32_t bits, std::uint32_t spares) {
  SramConfig config;
  config.name = name;
  config.words = words;
  config.bits = bits;
  config.spare_rows = spares;
  return config;
}

CellCoord random_cell(const SramConfig& config, Rng& rng) {
  return {static_cast<std::uint32_t>(rng.uniform(config.words)),
          static_cast<std::uint32_t>(rng.uniform(config.bits))};
}

/// Every fault family the engine models, SOF and DRF included.
std::vector<FaultInstance> random_full_mix(const SramConfig& config,
                                           std::size_t count, Rng& rng) {
  static const FaultKind cell_kinds[] = {
      FaultKind::sa0,  FaultKind::sa1,  FaultKind::tf_up,
      FaultKind::tf_down, FaultKind::sof, FaultKind::drf0, FaultKind::drf1};
  static const FaultKind coupling_kinds[] = {
      FaultKind::cf_in_up,   FaultKind::cf_in_down,  FaultKind::cf_id_up0,
      FaultKind::cf_id_up1,  FaultKind::cf_id_down0, FaultKind::cf_id_down1,
      FaultKind::cf_st_00,   FaultKind::cf_st_01,    FaultKind::cf_st_10,
      FaultKind::cf_st_11};
  std::vector<FaultInstance> out;
  for (std::size_t i = 0; i < count; ++i) {
    switch (rng.uniform(3)) {
      case 0:
        out.push_back(faults::make_cell_fault(
            cell_kinds[rng.uniform(std::size(cell_kinds))],
            random_cell(config, rng)));
        break;
      case 1: {
        const auto aggressor = random_cell(config, rng);
        auto victim = random_cell(config, rng);
        if (victim == aggressor) {
          victim.bit = (victim.bit + 1) % config.bits;
          if (victim == aggressor) {
            victim.row = (victim.row + 1) % config.words;
          }
        }
        out.push_back(faults::make_coupling_fault(
            coupling_kinds[rng.uniform(std::size(coupling_kinds))], aggressor,
            victim));
        break;
      }
      default: {
        const auto addr =
            static_cast<std::uint32_t>(rng.uniform(config.words));
        if (config.words < 2 || rng.bernoulli(0.34)) {
          out.push_back(
              faults::make_address_fault(FaultKind::af_no_access, addr));
          break;
        }
        std::uint32_t other =
            static_cast<std::uint32_t>(rng.uniform(config.words - 1));
        if (other >= addr) {
          ++other;
        }
        out.push_back(faults::make_address_fault(
            rng.bernoulli(0.5) ? FaultKind::af_wrong_row
                               : FaultKind::af_extra_row,
            addr, other));
        break;
      }
    }
  }
  return out;
}

/// Sorted suspect-cell vector of a diagnosis log for one memory.
std::vector<CellCoord> sorted_cells(const bisd::DiagnosisLog& log,
                                    std::size_t memory_index) {
  const auto cells = log.cells(memory_index);
  return {cells.begin(), cells.end()};  // std::set iterates sorted
}

// ---- fast scheme vs. wrap-emulating runner (cell-exact) -------------------

TEST(Differential, FastSchemeMatchesRunnerOnRandomSingleMemories) {
  Rng rng(90125);
  for (int trial = 0; trial < 300; ++trial) {
    const auto config =
        cfg("s" + std::to_string(trial),
            static_cast<std::uint32_t>(rng.uniform_in(2, 28)),
            static_cast<std::uint32_t>(rng.uniform_in(2, 36)), 4);
    const auto truth = random_full_mix(config, rng.uniform(6), rng);

    bisd::SocUnderTest soc;
    soc.add_memory(config, truth);
    bisd::FastScheme scheme;
    const auto result = scheme.diagnose(soc);

    sram::Sram standalone(config,
                          std::make_unique<faults::FaultSet>(truth));
    const auto reference = march::MarchRunner().run(
        standalone, scheme.test_for_width(config.bits));

    EXPECT_EQ(sorted_cells(result.log, 0), reference.suspect_cells())
        << "trial " << trial << " (" << config.words << "x" << config.bits
        << ")";
  }
}

TEST(Differential, FastSchemeMatchesRunnerOnHeterogeneousSoCs) {
  // The controller sweeps the largest capacity; smaller memories wrap and
  // see every pattern several times (Sec. 3.1).  The runner reproduces the
  // wrap through its global_words parameter — per-memory suspect sets must
  // still be identical.
  Rng rng(31);
  for (int trial = 0; trial < 150; ++trial) {
    const int memories = 2 + static_cast<int>(rng.uniform(2));
    std::vector<SramConfig> configs;
    std::vector<std::vector<FaultInstance>> truths;
    for (int m = 0; m < memories; ++m) {
      configs.push_back(
          cfg("h" + std::to_string(trial) + "_" + std::to_string(m),
              static_cast<std::uint32_t>(rng.uniform_in(2, 20)),
              static_cast<std::uint32_t>(rng.uniform_in(2, 70)), 4));
      truths.push_back(random_full_mix(configs.back(), rng.uniform(5), rng));
    }

    bisd::SocUnderTest soc;
    for (int m = 0; m < memories; ++m) {
      soc.add_memory(configs[m], truths[m]);
    }
    bisd::FastScheme scheme;
    const auto result = scheme.diagnose(soc);
    const auto test = scheme.test_for_width(soc.max_bits());
    const auto n_max = soc.max_words();

    for (int m = 0; m < memories; ++m) {
      sram::Sram standalone(configs[m],
                            std::make_unique<faults::FaultSet>(truths[m]));
      const auto reference =
          march::MarchRunner().run(standalone, test, n_max);
      EXPECT_EQ(sorted_cells(result.log, m), reference.suspect_cells())
          << "trial " << trial << " memory " << m;
    }
  }
}

// ---- fast vs. baseline (row-exact on fully-localizable populations) -------

TEST(Differential, FastAndBaselineAgreeOnStuckAtTransitionRows) {
  Rng rng(2027);
  for (int trial = 0; trial < 150; ++trial) {
    const auto config =
        cfg("b" + std::to_string(trial),
            static_cast<std::uint32_t>(rng.uniform_in(4, 16)),
            static_cast<std::uint32_t>(rng.uniform_in(2, 12)), 0);
    auto repairable = config;
    repairable.spare_rows = repairable.words;  // repair past every find

    static const FaultKind kinds[] = {FaultKind::sa0, FaultKind::sa1,
                                      FaultKind::tf_up, FaultKind::tf_down};
    std::set<std::uint32_t> used_rows;
    std::vector<FaultInstance> truth;
    const int count = 1 + static_cast<int>(rng.uniform(4));
    for (int f = 0; f < count && used_rows.size() < config.words; ++f) {
      std::uint32_t row;
      do {
        row = static_cast<std::uint32_t>(rng.uniform(config.words));
      } while (used_rows.count(row) != 0);
      used_rows.insert(row);
      truth.push_back(faults::make_cell_fault(
          kinds[rng.uniform(std::size(kinds))],
          {row, static_cast<std::uint32_t>(rng.uniform(config.bits))}));
    }

    bisd::SocUnderTest fast_soc;
    fast_soc.add_memory(repairable, truth);
    bisd::FastSchemeOptions fast_options;
    fast_options.include_drf = false;
    bisd::FastScheme fast(fast_options);
    const auto fast_rows = fast.diagnose(fast_soc).log.faulty_rows(0);

    bisd::SocUnderTest base_soc;
    base_soc.add_memory(repairable, truth);
    bisd::BaselineScheme baseline;
    const auto base_result = baseline.diagnose(base_soc);
    const auto base_rows = base_result.log.faulty_rows(0);

    EXPECT_EQ(fast_rows, base_rows) << "trial " << trial;
    EXPECT_EQ(fast_rows, used_rows) << "trial " << trial;

    // The baseline's cell candidates stay inside the faulty rows even when
    // serial-chain corruption shifts them off the defective bit.
    for (const auto& record : base_result.log.records()) {
      EXPECT_TRUE(used_rows.count(record.addr) != 0)
          << "trial " << trial << ": stray candidate row " << record.addr;
    }
  }
}

}  // namespace
}  // namespace fastdiag
