// Tests for the v2 API machinery: SessionSpec validation through
// Expected<_, ConfigError>, the SchemeRegistry, sweep expansion, and the
// batched parallel DiagnosisEngine (including serial-vs-parallel
// bit-identity).
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "core/fastdiag.h"

namespace fastdiag::core {
namespace {

sram::SramConfig small(const std::string& name, std::uint32_t words,
                       std::uint32_t bits, std::uint32_t spares = 16) {
  sram::SramConfig config;
  config.name = name;
  config.words = words;
  config.bits = bits;
  config.spare_rows = spares;
  return config;
}

// ---- SessionSpec validation ----------------------------------------------

TEST(SpecValidation, EmptySpecFailsWithNoMemory) {
  const auto spec = SessionSpec::builder().build();
  ASSERT_FALSE(spec.has_value());
  EXPECT_EQ(spec.error().code, ConfigErrorCode::no_memory);
}

TEST(SpecValidation, BadMemoryConfigIsNamedInTheError) {
  sram::SramConfig broken;
  broken.name = "zero-words";
  broken.words = 0;
  broken.bits = 8;
  const auto spec = SessionSpec::builder().add_sram(broken).build();
  ASSERT_FALSE(spec.has_value());
  EXPECT_EQ(spec.error().code, ConfigErrorCode::invalid_memory);
  EXPECT_NE(spec.error().message.find("zero-words"), std::string::npos);
}

TEST(SpecValidation, OutOfRangeParametersAreCaughtAtBuild) {
  const auto base = SessionSpec::builder().add_sram(small("a", 32, 8));

  auto bad_rate = base;
  EXPECT_EQ(bad_rate.defect_rate(1.5).build().error().code,
            ConfigErrorCode::invalid_defect_rate);

  auto bad_fraction = base;
  EXPECT_EQ(bad_fraction.retention_fraction(-0.1).build().error().code,
            ConfigErrorCode::invalid_retention_fraction);

  auto bad_clock = base;
  EXPECT_EQ(bad_clock.clock_ns(0).build().error().code,
            ConfigErrorCode::invalid_clock);
}

TEST(SpecValidation, UnknownSchemeFailsAtBuildNotAtRun) {
  const auto spec = SessionSpec::builder()
                        .add_sram(small("a", 32, 8))
                        .scheme("no-such-scheme")
                        .build();
  ASSERT_FALSE(spec.has_value());
  EXPECT_EQ(spec.error().code, ConfigErrorCode::unknown_scheme);
  EXPECT_NE(spec.error().to_string().find("unknown_scheme"),
            std::string::npos);
}

TEST(SpecValidation, BuildersNeverThrow) {
  // The whole point of the Expected pipeline: collecting bad values is
  // fine, only build() reports them.
  EXPECT_NO_THROW(SessionSpec::builder()
                      .defect_rate(42.0)
                      .retention_fraction(-3.0)
                      .clock_ns(0)
                      .scheme("bogus"));
}

// ---- SchemeRegistry -------------------------------------------------------

TEST(Registry, BuiltinsAreRegistered) {
  auto& registry = SchemeRegistry::global();
  for (const char* name : {"fast", "fast-without-drf", "baseline",
                           "baseline-with-retention"}) {
    EXPECT_TRUE(registry.contains(name)) << name;
  }
  const auto names = registry.names();
  EXPECT_GE(names.size(), 4u);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(Registry, CapabilitiesDescribeTheBuiltins) {
  auto& registry = SchemeRegistry::global();
  EXPECT_TRUE(registry.capabilities("fast").covers_drf);
  EXPECT_FALSE(registry.capabilities("fast").needs_repair_pass);
  EXPECT_FALSE(registry.capabilities("baseline").covers_drf);
  EXPECT_TRUE(registry.capabilities("baseline").needs_repair_pass);
  EXPECT_TRUE(
      registry.capabilities("baseline-with-retention").covers_drf);
}

TEST(Registry, UnknownNamesThrowOnUse) {
  auto& registry = SchemeRegistry::global();
  EXPECT_FALSE(registry.contains("no-such-scheme"));
  EXPECT_THROW((void)registry.make("no-such-scheme", {}),
               std::invalid_argument);
  EXPECT_THROW((void)registry.capabilities("no-such-scheme"),
               std::invalid_argument);
}

TEST(Registry, UserSchemesPlugInWithoutTouchingCore) {
  // A private registry keeps the test hermetic; the global one works the
  // same way.
  SchemeRegistry registry;
  registry.register_scheme(
      "user-fast", {.covers_drf = true, .needs_repair_pass = false},
      [](const SchemeContext& context) {
        bisd::FastSchemeOptions options;
        options.clock = context.clock;
        return std::make_unique<bisd::FastScheme>(options);
      });
  EXPECT_TRUE(registry.contains("user-fast"));
  EXPECT_EQ(registry.size(), 1u);

  // Specs validate against the registry they are given.
  const auto spec = SessionSpec::builder()
                        .add_sram(small("a", 16, 8))
                        .scheme("user-fast")
                        .build(registry);
  ASSERT_TRUE(spec.has_value());

  auto scheme = registry.make("user-fast", {});
  ASSERT_NE(scheme, nullptr);
  EXPECT_FALSE(scheme->name().empty());
}

TEST(Registry, DuplicateAndDegenerateRegistrationsAreRejected) {
  SchemeRegistry registry;
  const auto factory = [](const SchemeContext&) {
    return std::make_unique<bisd::FastScheme>();
  };
  registry.register_scheme("dup", {}, factory);
  EXPECT_THROW(registry.register_scheme("dup", {}, factory),
               std::invalid_argument);
  EXPECT_THROW(registry.register_scheme("", {}, factory),
               std::invalid_argument);
  EXPECT_THROW(registry.register_scheme("null-factory", {}, nullptr),
               std::invalid_argument);
}

// ---- SweepSpec ------------------------------------------------------------

SweepSpec demo_sweep() {
  SweepSpec sweep;
  sweep.base = SessionSpec::builder().add_sram(small("a", 32, 8));
  sweep.schemes = {"fast", "baseline"};
  sweep.defect_rates = {0.01, 0.02, 0.05};
  sweep.seeds = {1, 2, 3, 4};
  return sweep;
}

TEST(Sweep, CardinalityIsTheProductOfNonEmptyAxes) {
  auto sweep = demo_sweep();
  EXPECT_EQ(sweep.cardinality(), 2u * 3u * 4u);

  sweep.socs = {{small("x", 16, 4)}, {small("y", 16, 4), small("z", 8, 4)}};
  EXPECT_EQ(sweep.cardinality(), 2u * 2u * 3u * 4u);

  SweepSpec trivial;
  trivial.base = SessionSpec::builder().add_sram(small("a", 32, 8));
  EXPECT_EQ(trivial.cardinality(), 1u);
}

TEST(Sweep, ExpansionMatchesCardinalityAndOrder) {
  const auto sweep = demo_sweep();
  const auto specs = sweep.expand();
  ASSERT_TRUE(specs.has_value()) << specs.error().to_string();
  ASSERT_EQ(specs.value().size(), sweep.cardinality());

  // Innermost axis (seeds) varies fastest.
  EXPECT_EQ(specs.value()[0].seed(), 1u);
  EXPECT_EQ(specs.value()[1].seed(), 2u);
  EXPECT_EQ(specs.value()[0].scheme(), "fast");
  // After all 3 rates x 4 seeds of "fast", "baseline" starts.
  EXPECT_EQ(specs.value()[11].scheme(), "fast");
  EXPECT_EQ(specs.value()[3 * 4].scheme(), "baseline");
  EXPECT_EQ(specs.value()[3 * 4].seed(), 1u);

  // Every combination is distinct.
  std::set<std::string> labels;
  for (const auto& spec : specs.value()) {
    labels.insert(spec.label());
  }
  EXPECT_EQ(labels.size(), specs.value().size());
}

TEST(Sweep, InvalidAxisValueSurfacesAsConfigError) {
  auto sweep = demo_sweep();
  sweep.schemes.push_back("no-such-scheme");
  const auto specs = sweep.expand();
  ASSERT_FALSE(specs.has_value());
  EXPECT_EQ(specs.error().code, ConfigErrorCode::unknown_scheme);

  auto empty_soc = demo_sweep();
  empty_soc.socs = {{}};
  EXPECT_EQ(empty_soc.expand().error().code, ConfigErrorCode::empty_sweep);
}

// ---- DiagnosisEngine ------------------------------------------------------

std::vector<SessionSpec> spec_batch() {
  SweepSpec sweep;
  sweep.base = SessionSpec::builder()
                   .add_sram(small("a", 48, 12))
                   .add_sram(small("b", 32, 8))
                   .with_repair(true);
  sweep.schemes = {"fast", "fast-without-drf"};
  sweep.defect_rates = {0.01, 0.03};
  sweep.seeds = {11, 22, 33};
  auto specs = sweep.expand();
  EXPECT_TRUE(specs.has_value());
  return std::move(specs).value();
}

TEST(Engine, ParallelRunsAreBitIdenticalToSerial) {
  const auto specs = spec_batch();
  const auto serial = DiagnosisEngine({.workers = 1}).run_batch(specs);
  const auto parallel = DiagnosisEngine({.workers = 8}).run_batch(specs);

  ASSERT_EQ(serial.run_count(), specs.size());
  ASSERT_EQ(parallel.run_count(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto& a = serial.runs[i];
    const auto& b = parallel.runs[i];
    EXPECT_EQ(a.scheme_name, b.scheme_name) << "run " << i;
    EXPECT_EQ(a.seed, b.seed) << "run " << i;
    EXPECT_EQ(a.injected_faults, b.injected_faults) << "run " << i;
    EXPECT_EQ(a.total_ns, b.total_ns) << "run " << i;
    EXPECT_EQ(a.result.time.cycles, b.result.time.cycles) << "run " << i;
    EXPECT_EQ(a.result.log.to_csv(), b.result.log.to_csv()) << "run " << i;
    EXPECT_EQ(a.repair_verified_clean, b.repair_verified_clean)
        << "run " << i;
  }
}

TEST(Engine, ObserverSeesEveryRunExactlyOnce) {
  const auto specs = spec_batch();
  std::atomic<std::size_t> calls{0};
  std::set<std::size_t> indices;
  const auto report = DiagnosisEngine({.workers = 4}).run_batch(
      specs, [&](std::size_t index, const Report& run) {
        ++calls;
        indices.insert(index);  // serialized by the engine
        EXPECT_FALSE(run.scheme_name.empty());
      });
  EXPECT_EQ(calls.load(), specs.size());
  EXPECT_EQ(indices.size(), specs.size());
  EXPECT_EQ(report.run_count(), specs.size());
}

TEST(Engine, EmptyBatchIsFine) {
  const auto report = DiagnosisEngine({.workers = 8}).run_batch({});
  EXPECT_EQ(report.run_count(), 0u);
}

TEST(Engine, PersistentPoolIsReusedAcrossBatchesBitIdentically) {
  // The pool is created at construction and fed through a work queue;
  // consecutive batches must not spawn threads, and per-worker scratch
  // (capacity feedback) must never leak into results — any worker count,
  // any batch sequence, bit-identical reports.
  const auto specs = spec_batch();
  DiagnosisEngine engine({.workers = 4});
  ASSERT_EQ(engine.pool_threads(), 3u);

  const auto first = engine.run_batch(specs);
  const auto second = engine.run_batch(specs);
  EXPECT_EQ(engine.pool_threads(), 3u);
  const auto serial = DiagnosisEngine({.workers = 1}).run_batch(specs);

  ASSERT_EQ(first.run_count(), specs.size());
  ASSERT_EQ(second.run_count(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(first.runs[i].result.log.to_csv(),
              second.runs[i].result.log.to_csv())
        << "run " << i;
    EXPECT_EQ(first.runs[i].total_ns, second.runs[i].total_ns) << "run " << i;
    EXPECT_EQ(first.runs[i].repair_verified_clean,
              second.runs[i].repair_verified_clean)
        << "run " << i;
    EXPECT_EQ(first.runs[i].result.log.to_csv(),
              serial.runs[i].result.log.to_csv())
        << "run " << i;
    EXPECT_EQ(first.runs[i].total_ns, serial.runs[i].total_ns)
        << "run " << i;
  }
}

TEST(Engine, PoolThreadsMatchResolvedWorkers) {
  // The calling thread is always a worker, so the pool owns workers - 1
  // threads; a single-worker engine owns none at all.
  EXPECT_EQ(DiagnosisEngine({.workers = 1}).pool_threads(), 0u);
  EXPECT_EQ(DiagnosisEngine({.workers = 6}).pool_threads(), 5u);
  DiagnosisEngine automatic({.workers = 0});
  EXPECT_EQ(automatic.pool_threads(),
            automatic.worker_count(1000000) - 1);
}

TEST(Engine, ConcurrentCallersShareOneEngineSafely) {
  // One batch dispatches per engine at a time: a concurrent caller blocks
  // until the pool frees (pooled engine) or runs with throwaway scratch
  // (pool-less engine).  Either way both callers get bit-identical
  // reports and no data races.
  const auto specs = spec_batch();
  for (const std::size_t workers : {std::size_t{1}, std::size_t{3}}) {
    DiagnosisEngine engine({.workers = workers});
    const auto expected = engine.run_batch(specs);
    AggregateReport from_thread;
    std::thread competitor(
        [&] { from_thread = engine.run_batch(specs); });
    const auto from_caller = engine.run_batch(specs);
    competitor.join();
    ASSERT_EQ(from_thread.run_count(), specs.size());
    ASSERT_EQ(from_caller.run_count(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
      EXPECT_EQ(from_thread.runs[i].result.log.to_csv(),
                expected.runs[i].result.log.to_csv())
          << "workers " << workers << " run " << i;
      EXPECT_EQ(from_caller.runs[i].result.log.to_csv(),
                expected.runs[i].result.log.to_csv())
          << "workers " << workers << " run " << i;
    }
  }
}

TEST(Engine, ChainedReentrancyAcrossEnginesDoesNotDeadlock) {
  // A -> B -> A: engine A's observer dispatches engine B, whose observer
  // re-enters A.  The inner A call may land on one of B's pool threads,
  // so re-entrancy detection must follow the dispatch chain across
  // threads — a plain thread-local marker would block on A's own
  // dispatch mutex forever.
  const auto specs = spec_batch();
  const std::vector<SessionSpec> small(specs.begin(), specs.begin() + 2);
  DiagnosisEngine a({.workers = 2});
  DiagnosisEngine b({.workers = 2});
  const auto plain = DiagnosisEngine({.workers = 1}).run_batch(small);

  std::atomic<bool> entered{false};
  const auto outer =
      a.run_batch(small, [&](std::size_t i, const Report&) {
        if (i != 0) {
          return;
        }
        (void)b.run_batch(small, [&](std::size_t j, const Report&) {
          if (j != 0 || entered.exchange(true)) {
            return;
          }
          const auto nested = a.run_batch(small);
          ASSERT_EQ(nested.run_count(), small.size());
          for (std::size_t k = 0; k < small.size(); ++k) {
            EXPECT_EQ(nested.runs[k].result.log.to_csv(),
                      plain.runs[k].result.log.to_csv());
          }
        });
      });
  EXPECT_TRUE(entered.load());
  EXPECT_EQ(outer.run_count(), small.size());
}

TEST(Engine, ReentrantRunBatchFallsBackToTheCallingThread) {
  // An observer (running on some pool worker) that re-enters run_batch on
  // the same engine must not deadlock on the busy pool: the nested batch
  // runs serially on the calling thread and still yields correct reports.
  const auto specs = spec_batch();
  const std::vector<SessionSpec> nested_specs(specs.begin(),
                                              specs.begin() + 2);
  DiagnosisEngine engine({.workers = 3});
  const auto plain = engine.run_batch(nested_specs);

  std::atomic<std::size_t> nested_runs{0};
  const auto outer =
      engine.run_batch(specs, [&](std::size_t index, const Report&) {
        if (index == 0) {
          const auto nested = engine.run_batch(nested_specs);
          nested_runs = nested.run_count();
          for (std::size_t i = 0; i < nested.run_count(); ++i) {
            EXPECT_EQ(nested.runs[i].result.log.to_csv(),
                      plain.runs[i].result.log.to_csv());
          }
        }
      });
  EXPECT_EQ(outer.run_count(), specs.size());
  EXPECT_EQ(nested_runs.load(), nested_specs.size());
}

TEST(Engine, WorkerCountClampsToBatchAndResolvesAuto) {
  DiagnosisEngine eight({.workers = 8});
  EXPECT_EQ(eight.worker_count(3), 3u);
  EXPECT_EQ(eight.worker_count(100), 8u);
  DiagnosisEngine automatic({.workers = 0});
  EXPECT_GE(automatic.worker_count(1000), 1u);
}

TEST(Engine, AggregateStatsSummarizeTheBatch) {
  SweepSpec sweep;
  sweep.base = SessionSpec::builder().add_sram(small("a", 32, 8, 32));
  sweep.schemes = {"fast", "baseline"};
  sweep.seeds = {1, 2, 3};
  const auto report =
      DiagnosisEngine({.workers = 4}).run_sweep(sweep);
  ASSERT_TRUE(report.has_value()) << report.error().to_string();
  const auto& aggregate = report.value();
  ASSERT_EQ(aggregate.run_count(), 6u);

  const auto recall = aggregate.recall_stats();
  EXPECT_LE(recall.min, recall.mean);
  EXPECT_LE(recall.mean, recall.max);
  EXPECT_GT(recall.max, 0.0);

  const auto time = aggregate.diagnosis_time_stats_ns();
  EXPECT_LE(time.min, time.mean);
  EXPECT_LE(time.mean, time.max);

  const auto times = aggregate.diagnosis_times_ns();
  EXPECT_TRUE(std::is_sorted(times.begin(), times.end()));
  EXPECT_EQ(aggregate.diagnosis_time_percentile_ns(0.0), times.front());
  EXPECT_EQ(aggregate.diagnosis_time_percentile_ns(100.0), times.back());

  const auto schemes = aggregate.per_scheme();
  ASSERT_EQ(schemes.size(), 2u);
  EXPECT_EQ(schemes[0].scheme_name, "baseline");
  EXPECT_EQ(schemes[1].scheme_name, "fast");
  EXPECT_EQ(schemes[0].runs, 3u);
  EXPECT_EQ(schemes[1].runs, 3u);
  // The fast scheme is, in fact, faster on the same SoCs.
  EXPECT_LT(schemes[1].total_ns.mean, schemes[0].total_ns.mean);

  const auto text = aggregate.summary();
  EXPECT_NE(text.find("runs:"), std::string::npos);
  EXPECT_NE(text.find("per scheme:"), std::string::npos);
}

TEST(Engine, SweepOfInvalidSpecsFailsClosed) {
  SweepSpec sweep;
  sweep.base = SessionSpec::builder();  // no memory
  const auto report = DiagnosisEngine().run_sweep(sweep);
  ASSERT_FALSE(report.has_value());
  EXPECT_EQ(report.error().code, ConfigErrorCode::no_memory);
}

// ---- SweepCursor + streaming ---------------------------------------------

TEST(SweepCursor, SpecAtMatchesExpansionEverywhere) {
  const auto sweep = demo_sweep();
  const auto expanded = sweep.expand();
  ASSERT_TRUE(expanded.has_value());
  for (std::size_t i = 0; i < expanded.value().size(); ++i) {
    const auto at = sweep.spec_at(i);
    ASSERT_TRUE(at.has_value()) << "index " << i;
    EXPECT_EQ(at.value().label(), expanded.value()[i].label()) << i;
  }
  // Past-the-end index is a caller bug, not a config error.
  EXPECT_THROW((void)sweep.spec_at(sweep.cardinality()),
               std::invalid_argument);
}

TEST(SweepCursor, YieldsTheExpansionInOrderThenExhausts) {
  const auto sweep = demo_sweep();
  auto cursor = SweepCursor::create(sweep);
  ASSERT_TRUE(cursor.has_value());
  EXPECT_EQ(cursor.value().cardinality(), sweep.cardinality());

  const auto expanded = sweep.expand();
  ASSERT_TRUE(expanded.has_value());
  std::size_t yielded = 0;
  while (auto spec = cursor.value().next()) {
    ASSERT_LT(yielded, expanded.value().size());
    EXPECT_EQ(spec->label(), expanded.value()[yielded].label());
    ++yielded;
  }
  EXPECT_EQ(yielded, sweep.cardinality());
  EXPECT_FALSE(cursor.value().next().has_value());
}

TEST(SweepCursor, SeekRepositionsAndValidationFailsAtCreate) {
  auto cursor = SweepCursor::create(demo_sweep());
  ASSERT_TRUE(cursor.has_value());
  cursor.value().seek(cursor.value().cardinality() - 1);
  EXPECT_TRUE(cursor.value().next().has_value());
  EXPECT_FALSE(cursor.value().next().has_value());

  auto bad = demo_sweep();
  bad.schemes.push_back("no-such-scheme");
  EXPECT_EQ(SweepCursor::create(bad).error().code,
            ConfigErrorCode::unknown_scheme);
}

TEST(Stream, FoldedAggregateIsBitIdenticalToBatch) {
  const auto specs = spec_batch();
  DiagnosisEngine engine({.workers = 4});
  const auto batch = engine.run_batch(specs);

  std::size_t cursor = 0;
  const auto streamed = engine.run_stream([&]() -> std::optional<SessionSpec> {
    if (cursor >= specs.size()) {
      return std::nullopt;
    }
    return specs[cursor++];
  });
  EXPECT_EQ(streamed.completed, specs.size());
  EXPECT_EQ(streamed.aggregate.folded, batch.folded);
  // The streaming path retains nothing.
  EXPECT_TRUE(streamed.aggregate.runs.empty());
}

TEST(Stream, SinkSeesAbsoluteIndicesAndProgressFiresOnInterval) {
  const auto specs = spec_batch();
  DiagnosisEngine engine({.workers = 2});

  std::size_t cursor = 0;
  std::set<std::size_t> seen;
  std::vector<std::uint64_t> progress_marks;
  DiagnosisEngine::StreamOptions options;
  options.window = 4;
  options.sink = [&](std::size_t index, const Report& run) {
    seen.insert(index);
    EXPECT_FALSE(run.scheme_name.empty());
  };
  options.progress_interval = 5;
  options.progress = [&](std::uint64_t completed, const AggregateReport&) {
    progress_marks.push_back(completed);
  };
  const auto result = engine.run_stream(
      [&]() -> std::optional<SessionSpec> {
        if (cursor >= specs.size()) {
          return std::nullopt;
        }
        return specs[cursor++];
      },
      options);

  EXPECT_EQ(result.completed, specs.size());
  EXPECT_EQ(seen.size(), specs.size());
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), specs.size() - 1);
  // 12 specs, interval 5: marks at 5, 10 and the final partial 12.
  EXPECT_EQ(progress_marks,
            (std::vector<std::uint64_t>{5, 10, specs.size()}));
}

TEST(Stream, ResumeFoldsOnTopOfTheSeedAggregate) {
  const auto specs = spec_batch();
  DiagnosisEngine engine({.workers = 1});
  const auto whole = engine.run_batch(specs);

  // Fold the first half, hand it to run_stream as the resume seed, and
  // stream only the second half: the result must equal the whole run.
  AggregateReport prefix;
  for (std::size_t i = 0; i < specs.size() / 2; ++i) {
    prefix.fold(DiagnosisEngine::execute(specs[i]));
  }
  std::size_t cursor = specs.size() / 2;
  std::vector<std::size_t> sink_indices;
  DiagnosisEngine::StreamOptions options;
  options.sink = [&](std::size_t index, const Report&) {
    sink_indices.push_back(index);
  };
  const auto resumed = engine.run_stream(
      [&]() -> std::optional<SessionSpec> {
        if (cursor >= specs.size()) {
          return std::nullopt;
        }
        return specs[cursor++];
      },
      options, std::move(prefix));

  EXPECT_EQ(resumed.completed, specs.size());  // prefix included
  EXPECT_EQ(resumed.aggregate.folded, whole.folded);
  // Sink indices continue from the resumed prefix, not from zero.
  ASSERT_FALSE(sink_indices.empty());
  EXPECT_EQ(sink_indices.front(), specs.size() / 2);
}

TEST(Stream, RequiresACallableSource) {
  DiagnosisEngine engine;
  EXPECT_THROW((void)engine.run_stream(DiagnosisEngine::SpecSource{}),
               std::invalid_argument);
}

// ---- Expected -------------------------------------------------------------

TEST(Expected, ValueAndErrorPaths) {
  const Expected<int, ConfigError> good(7);
  EXPECT_TRUE(good.has_value());
  EXPECT_EQ(good.value(), 7);
  EXPECT_EQ(good.value_or(0), 7);

  const Expected<int, ConfigError> bad =
      make_unexpected(ConfigError{ConfigErrorCode::no_memory, "nope"});
  EXPECT_FALSE(bad.has_value());
  EXPECT_EQ(bad.error().code, ConfigErrorCode::no_memory);
  EXPECT_EQ(bad.value_or(-1), -1);
  EXPECT_THROW((void)bad.value(), std::logic_error);
  EXPECT_THROW((void)good.error(), std::logic_error);
}

}  // namespace
}  // namespace fastdiag::core
