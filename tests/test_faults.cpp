// Unit tests for src/faults: fault taxonomy, the FaultSet semantics engine
// (driven through a real Sram), defect translation, injection, dictionary.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "faults/defect.h"
#include "faults/dictionary.h"
#include "faults/fault.h"
#include "faults/fault_kind.h"
#include "faults/fault_set.h"
#include "faults/injector.h"
#include "sram/sram.h"
#include "util/rng.h"

namespace fastdiag::faults {
namespace {

using sram::CellCoord;
using sram::Mode;
using sram::Sram;
using sram::SramConfig;

SramConfig small_config() {
  SramConfig config;
  config.name = "t8x4";
  config.words = 8;
  config.bits = 4;
  config.retention_ns = 1000;
  return config;
}

/// Builds a faulty memory from explicit instances.
Sram make_faulty(const std::vector<FaultInstance>& faults,
                 SramConfig config = small_config()) {
  return Sram(config, std::make_unique<FaultSet>(faults));
}

BitVector word(const std::string& bits) { return BitVector::from_string(bits); }

// ---------------------------------------------------------------- taxonomy

TEST(FaultKind, ClassesPartitionKinds) {
  for (const auto kind : all_fault_kinds()) {
    EXPECT_FALSE(fault_kind_name(kind).empty());
    (void)fault_class(kind);
  }
  EXPECT_EQ(all_fault_kinds().size(), 20u);
  EXPECT_EQ(all_fault_classes().size(), 6u);
}

TEST(FaultKind, AggressorOnlyForCoupling) {
  EXPECT_TRUE(needs_aggressor(FaultKind::cf_in_up));
  EXPECT_TRUE(needs_aggressor(FaultKind::cf_st_01));
  EXPECT_FALSE(needs_aggressor(FaultKind::sa0));
  EXPECT_FALSE(needs_aggressor(FaultKind::drf1));
  EXPECT_FALSE(needs_aggressor(FaultKind::af_no_access));
}

TEST(FaultKind, RetentionPredicate) {
  EXPECT_TRUE(is_retention_fault(FaultKind::drf0));
  EXPECT_TRUE(is_retention_fault(FaultKind::drf1));
  EXPECT_FALSE(is_retention_fault(FaultKind::sa0));
}

// ---------------------------------------------------------------- instance

TEST(FaultInstance, ValidateRejectsOutOfRangeVictim) {
  const auto f = make_cell_fault(FaultKind::sa0, {8, 0});
  EXPECT_THROW(f.validate(small_config()), std::invalid_argument);
}

TEST(FaultInstance, ValidateRejectsSelfCoupling) {
  const auto f = make_coupling_fault(FaultKind::cf_in_up, {1, 1}, {1, 1});
  EXPECT_THROW(f.validate(small_config()), std::invalid_argument);
}

TEST(FaultInstance, ValidateRejectsAddressFaultSelfRow) {
  const auto f = make_address_fault(FaultKind::af_wrong_row, 2, 2);
  EXPECT_THROW(f.validate(small_config()), std::invalid_argument);
}

TEST(FaultInstance, BuilderKindChecks) {
  EXPECT_THROW((void)make_cell_fault(FaultKind::cf_in_up, {0, 0}),
               std::invalid_argument);
  EXPECT_THROW((void)make_coupling_fault(FaultKind::sa0, {0, 0}, {0, 1}),
               std::invalid_argument);
  EXPECT_THROW((void)make_address_fault(FaultKind::sa0, 0),
               std::invalid_argument);
}

TEST(FaultInstance, FootprintOfCellFaultIsVictim) {
  const auto f = make_cell_fault(FaultKind::tf_up, {3, 2});
  const auto cells = f.footprint(small_config());
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0], (CellCoord{3, 2}));
}

TEST(FaultInstance, FootprintOfAddressFaultCoversRows) {
  const auto f = make_address_fault(FaultKind::af_extra_row, 1, 5);
  const auto cells = f.footprint(small_config());
  EXPECT_EQ(cells.size(), 8u);  // 4 bits of row 1 + 4 bits of row 5
}

TEST(FaultInstance, ToStringMentionsKind) {
  const auto f = make_coupling_fault(FaultKind::cf_id_up1, {0, 0}, {0, 1});
  EXPECT_NE(f.to_string().find("CFid<up;1>"), std::string::npos);
}

// ------------------------------------------------------------- stuck-at

TEST(FaultSemantics, Sa0ReadsZeroDespiteWrites) {
  auto mem = make_faulty({make_cell_fault(FaultKind::sa0, {2, 1})});
  mem.write(2, word("1111"));
  EXPECT_EQ(mem.read(2), word("1101"));
}

TEST(FaultSemantics, Sa1ReadsOneFromPowerOn) {
  auto mem = make_faulty({make_cell_fault(FaultKind::sa1, {2, 1})});
  EXPECT_EQ(mem.read(2), word("0010"));
  mem.write(2, word("0000"));
  EXPECT_EQ(mem.read(2), word("0010"));
}

TEST(FaultSemantics, StuckCellDoesNotDisturbNeighbours) {
  auto mem = make_faulty({make_cell_fault(FaultKind::sa0, {2, 1})});
  mem.write(2, word("1111"));
  mem.write(3, word("1010"));
  EXPECT_EQ(mem.read(3), word("1010"));
}

// ------------------------------------------------------------ transition

TEST(FaultSemantics, TfUpBlocksRise) {
  auto mem = make_faulty({make_cell_fault(FaultKind::tf_up, {1, 0})});
  mem.write(1, word("0001"));
  EXPECT_EQ(mem.read(1), word("0000"));  // the rise was swallowed
}

TEST(FaultSemantics, TfUpAllowsFall) {
  auto mem = make_faulty({make_cell_fault(FaultKind::tf_down, {1, 0})});
  mem.write(1, word("0001"));  // rise OK
  EXPECT_EQ(mem.read(1), word("0001"));
  mem.write(1, word("0000"));  // fall blocked
  EXPECT_EQ(mem.read(1), word("0001"));
}

// ------------------------------------------------------------ stuck-open

TEST(FaultSemantics, SofReadRepeatsSenseLatch) {
  auto mem = make_faulty({make_cell_fault(FaultKind::sof, {2, 1})});
  // Set the column-1 sense latch to 1 by reading another row holding 1.
  mem.write(5, word("1111"));
  (void)mem.read(5);
  EXPECT_EQ(mem.read(2), word("0010"));  // bit 1 echoes the latch
  // Now drive the latch to 0 and read again.
  mem.write(5, word("0000"));
  (void)mem.read(5);
  EXPECT_EQ(mem.read(2), word("0000"));
}

TEST(FaultSemantics, SofWriteIsLost) {
  auto mem = make_faulty({make_cell_fault(FaultKind::sof, {2, 1})});
  mem.write(2, word("1111"));
  EXPECT_FALSE(mem.peek({2, 1}));  // the cell itself never changed
}

// -------------------------------------------------------------- coupling

TEST(FaultSemantics, CfInUpInvertsVictimOnRise) {
  auto mem = make_faulty(
      {make_coupling_fault(FaultKind::cf_in_up, {1, 1}, {2, 2})});
  mem.write(2, word("0000"));
  mem.write(1, word("0010"));  // aggressor 0 -> 1
  EXPECT_EQ(mem.read(2), word("0100"));  // victim flipped
  mem.write(1, word("0000"));  // falling edge: no effect for CFin-up
  EXPECT_EQ(mem.read(2), word("0100"));
}

TEST(FaultSemantics, CfInDownInvertsVictimOnFall) {
  auto mem = make_faulty(
      {make_coupling_fault(FaultKind::cf_in_down, {1, 1}, {2, 2})});
  mem.write(1, word("0010"));  // rise: no effect
  EXPECT_EQ(mem.read(2), word("0000"));
  mem.write(1, word("0000"));  // fall: victim inverts
  EXPECT_EQ(mem.read(2), word("0100"));
}

TEST(FaultSemantics, CfIdForcesVictimValue) {
  auto mem = make_faulty(
      {make_coupling_fault(FaultKind::cf_id_up0, {0, 0}, {4, 3})});
  mem.write(4, word("1000"));  // victim holds 1
  mem.write(0, word("0001"));  // aggressor rises -> victim forced to 0
  EXPECT_EQ(mem.read(4), word("0000"));
  // Idempotent: repeating the trigger keeps the victim at 0.
  mem.write(0, word("0000"));
  mem.write(0, word("0001"));
  EXPECT_EQ(mem.read(4), word("0000"));
}

TEST(FaultSemantics, CfStPinsVictimWhileAggressorHoldsState) {
  auto mem = make_faulty(
      {make_coupling_fault(FaultKind::cf_st_10, {3, 0}, {5, 2})});
  mem.write(5, word("0100"));       // victim = 1
  mem.write(3, word("0001"));       // aggressor enters state 1
  EXPECT_EQ(mem.read(5), word("0000"));  // victim pinned to 0
  mem.write(5, word("0100"));       // write fights the pin and loses
  EXPECT_EQ(mem.read(5), word("0000"));
  mem.write(3, word("0000"));       // aggressor leaves the trigger state
  mem.write(5, word("0100"));
  EXPECT_EQ(mem.read(5), word("0100"));
}

TEST(FaultSemantics, IntraWordCouplingWriteOrderIndependent) {
  // Aggressor and victim in the same word, both orders of (aggr, victim)
  // bit indices: the disturb must win regardless of bit position.
  for (const bool aggressor_first : {true, false}) {
    const std::uint32_t aggr_bit = aggressor_first ? 0u : 3u;
    const std::uint32_t victim_bit = aggressor_first ? 3u : 0u;
    auto mem = make_faulty({make_coupling_fault(
        FaultKind::cf_id_up0, {2, aggr_bit}, {2, victim_bit})});
    // One word write that raises the aggressor and writes 1 to the victim.
    mem.write(2, word("1001"));
    EXPECT_FALSE(mem.read(2).get(victim_bit))
        << "victim must be disturbed, aggressor bit " << aggr_bit;
    EXPECT_TRUE(mem.read(2).get(aggr_bit));
  }
}

// ---------------------------------------------------------- address fault

TEST(FaultSemantics, AfNoAccessLosesWritesAndReadsPrecharge) {
  auto mem = make_faulty({make_address_fault(FaultKind::af_no_access, 3)});
  mem.write(3, word("1010"));
  EXPECT_EQ(mem.read(3), word("1111"));  // precharged bitlines read as 1s
  EXPECT_FALSE(mem.peek({3, 1}));        // the row itself never changed
}

TEST(FaultSemantics, AfWrongRowAccessesOtherRow) {
  auto mem = make_faulty({make_address_fault(FaultKind::af_wrong_row, 3, 6)});
  mem.write(3, word("1010"));            // lands in row 6
  EXPECT_EQ(mem.read(3), word("1010"));  // reads row 6 back: looks fine...
  EXPECT_TRUE(mem.peek({6, 1}));
  EXPECT_FALSE(mem.peek({3, 1}));
  mem.write(6, word("0000"));            // ...until the alias is disturbed
  EXPECT_EQ(mem.read(3), word("0000"));
}

TEST(FaultSemantics, AfExtraRowWritesBothAndWiredAndsReads) {
  auto mem = make_faulty({make_address_fault(FaultKind::af_extra_row, 2, 7)});
  mem.write(2, word("1100"));
  EXPECT_TRUE(mem.peek({7, 3}));  // the extra row was co-written
  mem.write(7, word("1010"));     // direct write to the extra row
  EXPECT_EQ(mem.read(2), word("1000"));  // read sees AND of rows 2 and 7
}

// -------------------------------------------------------------- retention

TEST(FaultSemantics, Drf1DecaysAfterRetention) {
  auto mem = make_faulty({make_cell_fault(FaultKind::drf1, {4, 0})});
  mem.write(4, word("0001"));
  EXPECT_EQ(mem.read(4), word("0001"));  // immediately fine
  mem.advance_time_ns(1001);             // beyond retention_ns = 1000
  EXPECT_EQ(mem.read(4), word("0000"));  // the 1 leaked away
}

TEST(FaultSemantics, Drf1HoldsZeroFine) {
  auto mem = make_faulty({make_cell_fault(FaultKind::drf1, {4, 0})});
  mem.write(4, word("0000"));
  mem.advance_time_ns(10'000);
  EXPECT_EQ(mem.read(4), word("0000"));
}

TEST(FaultSemantics, Drf0DecaysStoredZero) {
  auto mem = make_faulty({make_cell_fault(FaultKind::drf0, {4, 0})});
  mem.write(4, word("0000"));
  mem.advance_time_ns(1001);
  EXPECT_EQ(mem.read(4), word("0001"));
}

TEST(FaultSemantics, NormalWriteSucceedsOnDrfCell) {
  // Fig. 6: a normal W1 drives BL to Vcc, flipping even the faulty cell.
  auto mem = make_faulty({make_cell_fault(FaultKind::drf1, {4, 0})});
  mem.write(4, word("0001"));
  EXPECT_TRUE(mem.peek({4, 0}));
}

TEST(FaultSemantics, NwrcFailsOnDrfCell) {
  // The NWRC leaves BL at float GND: the defective pull-up cannot flip the
  // cell, so the fault is visible *immediately* — no 100 ms wait.
  auto mem = make_faulty({make_cell_fault(FaultKind::drf1, {4, 0})});
  mem.nwrc_write(4, word("0001"));
  EXPECT_EQ(mem.read(4), word("0000"));
}

TEST(FaultSemantics, NwrcTowardHealthySideSucceedsOnDrfCell) {
  auto mem = make_faulty({make_cell_fault(FaultKind::drf1, {4, 0})});
  mem.write(4, word("0001"));
  mem.nwrc_write(4, word("0000"));  // falling side is healthy
  EXPECT_EQ(mem.read(4), word("0000"));
}

TEST(FaultSemantics, RefreshingWriteRestartsDecayClock) {
  auto mem = make_faulty({make_cell_fault(FaultKind::drf1, {4, 0})});
  mem.write(4, word("0001"));
  mem.advance_time_ns(900);
  mem.write(4, word("0001"));  // refresh
  mem.advance_time_ns(900);
  EXPECT_EQ(mem.read(4), word("0001"));  // only 900 ns since last write
  mem.advance_time_ns(200);
  EXPECT_EQ(mem.read(4), word("0000"));
}

// ------------------------------------------------------ defect translation

TEST(DefectTranslation, EveryClassYieldsMatchingFaultClass) {
  Rng rng(123);
  const auto config = small_config();
  const struct {
    DefectClass cls;
    std::vector<FaultClass> allowed;
  } expectations[] = {
      {DefectClass::cell_short, {FaultClass::stuck_at}},
      {DefectClass::cell_open, {FaultClass::transition, FaultClass::stuck_open}},
      {DefectClass::bridge, {FaultClass::coupling}},
      {DefectClass::decoder_open, {FaultClass::address}},
      {DefectClass::pullup_open, {FaultClass::retention}},
  };
  for (const auto& expectation : expectations) {
    for (int i = 0; i < 50; ++i) {
      Defect defect{expectation.cls, {2, 1}};
      const auto fault = translate_defect(defect, config, rng);
      EXPECT_NO_THROW(fault.validate(config));
      const auto cls = fault_class(fault.kind);
      EXPECT_TRUE(std::find(expectation.allowed.begin(),
                            expectation.allowed.end(),
                            cls) != expectation.allowed.end())
          << defect.to_string() << " -> " << fault.to_string();
    }
  }
}

TEST(DefectTranslation, BridgeVictimIsAdjacent) {
  Rng rng(7);
  const auto config = small_config();
  for (int i = 0; i < 100; ++i) {
    Defect defect{DefectClass::bridge, {3, 2}};
    const auto fault = translate_defect(defect, config, rng);
    const int dr = static_cast<int>(fault.victim.row) - 3;
    const int db = static_cast<int>(fault.victim.bit) - 2;
    EXPECT_EQ(std::abs(dr) + std::abs(db), 1)
        << "victim must be a 4-neighbour, got " << fault.to_string();
  }
}

TEST(DefectTranslation, LogicClassesExcludeRetention) {
  const auto& classes = logic_defect_classes();
  EXPECT_EQ(classes.size(), 4u);  // "all four defect types in [8]"
  for (const auto cls : classes) {
    EXPECT_NE(cls, DefectClass::pullup_open);
  }
}

// --------------------------------------------------------------- injection

TEST(Injector, CaseStudyFaultCountMatchesPaper) {
  // n=512, c=100, 1% defective cells, 2 cells per fault -> 256 faults.
  const auto config = sram::benchmark_sram();
  InjectionSpec spec;
  EXPECT_EQ(expected_fault_count(config, spec), 256u);
}

TEST(Injector, ProducesRequestedPopulation) {
  Rng rng(99);
  const auto config = sram::benchmark_sram();
  InjectionSpec spec;
  const auto result = inject(config, spec, rng);
  EXPECT_EQ(result.faults.size(), 256u);
  EXPECT_EQ(result.defects.size(), result.faults.size());
  for (const auto& fault : result.faults) {
    EXPECT_NO_THROW(fault.validate(config));
    EXPECT_NE(fault_class(fault.kind), FaultClass::retention);
  }
}

TEST(Injector, RetentionFaultsAddedOnRequest) {
  Rng rng(99);
  const auto config = sram::benchmark_sram();
  InjectionSpec spec;
  spec.include_retention = true;
  spec.retention_fraction = 0.125;
  const auto result = inject(config, spec, rng);
  std::size_t retention = 0;
  for (const auto& fault : result.faults) {
    retention += is_retention_fault(fault.kind) ? 1u : 0u;
  }
  EXPECT_EQ(retention, 32u);  // ceil(256 * 0.125)
  EXPECT_EQ(result.faults.size(), 256u + 32u);
}

TEST(Injector, DeterministicUnderSeed) {
  const auto config = sram::benchmark_sram();
  InjectionSpec spec;
  Rng a(5), b(5);
  const auto ra = inject(config, spec, a);
  const auto rb = inject(config, spec, b);
  EXPECT_EQ(ra.faults, rb.faults);
}

TEST(Injector, ZeroRateYieldsNothing) {
  Rng rng(1);
  InjectionSpec spec;
  spec.cell_defect_rate = 0.0;
  const auto result = inject(small_config(), spec, rng);
  EXPECT_TRUE(result.faults.empty());
}

TEST(Injector, RateOutOfRangeRejected) {
  Rng rng(1);
  InjectionSpec spec;
  spec.cell_defect_rate = 1.5;
  EXPECT_THROW((void)inject(small_config(), spec, rng),
               std::invalid_argument);
}

// -------------------------------------------------------------- dictionary

TEST(Dictionary, PerfectDiagnosisScoresFull) {
  const auto config = small_config();
  const std::vector<FaultInstance> truth = {
      make_cell_fault(FaultKind::sa0, {1, 2}),
      make_cell_fault(FaultKind::tf_up, {3, 0}),
  };
  const std::set<CellCoord> diagnosed = {{1, 2}, {3, 0}};
  const auto report = match_diagnosis(truth, diagnosed, config);
  EXPECT_EQ(report.matched_faults, 2u);
  EXPECT_EQ(report.spurious_cells, 0u);
  EXPECT_DOUBLE_EQ(report.recall(), 1.0);
  EXPECT_DOUBLE_EQ(report.precision(), 1.0);
}

TEST(Dictionary, MissedFaultLowersRecall) {
  const auto config = small_config();
  const std::vector<FaultInstance> truth = {
      make_cell_fault(FaultKind::sa0, {1, 2}),
      make_cell_fault(FaultKind::sa1, {5, 1}),
  };
  const std::set<CellCoord> diagnosed = {{1, 2}};
  const auto report = match_diagnosis(truth, diagnosed, config);
  EXPECT_DOUBLE_EQ(report.recall(), 0.5);
  EXPECT_DOUBLE_EQ(report.precision(), 1.0);
}

TEST(Dictionary, SpuriousCellLowersPrecision) {
  const auto config = small_config();
  const std::vector<FaultInstance> truth = {
      make_cell_fault(FaultKind::sa0, {1, 2}),
  };
  const std::set<CellCoord> diagnosed = {{1, 2}, {7, 3}};
  const auto report = match_diagnosis(truth, diagnosed, config);
  EXPECT_EQ(report.spurious_cells, 1u);
  EXPECT_DOUBLE_EQ(report.precision(), 0.5);
}

TEST(Dictionary, CouplingMatchedByVictimOrAggressor) {
  const auto config = small_config();
  const std::vector<FaultInstance> truth = {
      make_coupling_fault(FaultKind::cf_id_up1, {2, 0}, {2, 1}),
  };
  EXPECT_EQ(match_diagnosis(truth, {{2, 1}}, config).matched_faults, 1u);
  EXPECT_EQ(match_diagnosis(truth, {{2, 0}}, config).matched_faults, 1u);
}

TEST(Dictionary, AddressFaultMatchedByRowCell) {
  const auto config = small_config();
  const std::vector<FaultInstance> truth = {
      make_address_fault(FaultKind::af_wrong_row, 3, 6),
  };
  EXPECT_EQ(match_diagnosis(truth, {{3, 0}}, config).matched_faults, 1u);
  EXPECT_EQ(match_diagnosis(truth, {{6, 2}}, config).matched_faults, 1u);
  EXPECT_EQ(match_diagnosis(truth, {{5, 2}}, config).matched_faults, 0u);
}

TEST(Dictionary, EmptyTruthGivesPerfectRecall) {
  const auto report = match_diagnosis({}, {}, small_config());
  EXPECT_DOUBLE_EQ(report.recall(), 1.0);
  EXPECT_DOUBLE_EQ(report.precision(), 1.0);
}

}  // namespace
}  // namespace fastdiag::faults
