// Golden-trace regression tests: the diagnosis log of a fixed seed is part
// of the observable contract.
//
// Each scenario runs a scheme over a deterministically injected SoC and
// compares the serialized trace byte-exactly against tests/golden/*.log.
// The traces are portable because every random draw goes through the
// project's own xoshiro256** Rng (see util/rng.h) — no standard-library
// distribution is involved anywhere in the pipeline.
//
// Regenerating after an *intentional* trace change:
//
//   $ ./test_golden --regen         # rewrites tests/golden/*.log in the
//                                   # source tree, then re-checks
//
// (FASTDIAG_REGEN_GOLDEN=1 in the environment works too, e.g. through
// ctest.)  Review the diff like any other contract change: record fields,
// cycle accounting and injection draws all land in these files.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/fastdiag.h"

namespace fastdiag {
namespace {

bool g_regen = false;

std::string golden_dir() { return std::string(FASTDIAG_TESTS_DIR) + "/golden"; }

/// The serialized trace: a stats preamble plus the full record CSV.
std::string serialize(const bisd::DiagnosisResult& result) {
  std::ostringstream out;
  out << "cycles=" << result.time.cycles << " pauses_ns="
      << result.time.pause_ns << " iterations=" << result.iterations
      << " records=" << result.log.records().size() << "\n";
  out << result.log.to_csv();
  return out.str();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void check_golden(const std::string& name, const std::string& trace) {
  const std::string path = golden_dir() + "/" + name;
  if (g_regen) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << trace;
  }
  const std::string expected = read_file(path);
  ASSERT_FALSE(expected.empty())
      << path << " missing or empty — run `./test_golden --regen`";
  EXPECT_EQ(trace, expected)
      << name << " diverged from its golden trace; if the change is "
      << "intentional, regenerate with `./test_golden --regen` and review "
      << "the diff";
}

/// The fixed heterogeneous SoC every scenario injects into.
std::vector<sram::SramConfig> golden_configs() {
  std::vector<sram::SramConfig> configs;
  const auto add = [&configs](const char* name, std::uint32_t words,
                              std::uint32_t bits) {
    sram::SramConfig config;
    config.name = name;
    config.words = words;
    config.bits = bits;
    config.spare_rows = 4;
    configs.push_back(config);
  };
  add("fifo", 24, 18);
  add("lut", 12, 9);
  add("tag", 16, 12);
  return configs;
}

bisd::SocUnderTest golden_soc(std::uint64_t seed, bool retention) {
  faults::InjectionSpec spec;
  spec.cell_defect_rate = 0.03;
  spec.include_retention = retention;
  return bisd::SocUnderTest::from_injection(golden_configs(), spec, seed);
}

TEST(GoldenTrace, FastSchemeSeed7) {
  auto soc = golden_soc(7, /*retention=*/true);
  bisd::FastScheme scheme;
  check_golden("fast_seed7.log", serialize(scheme.diagnose(soc)));
}

TEST(GoldenTrace, FastSchemeWithoutDrfSeed3) {
  auto soc = golden_soc(3, /*retention=*/false);
  bisd::FastSchemeOptions options;
  options.include_drf = false;
  bisd::FastScheme scheme(options);
  check_golden("fast_nodrf_seed3.log", serialize(scheme.diagnose(soc)));
}

TEST(GoldenTrace, BaselineSchemeSeed5) {
  auto soc = golden_soc(5, /*retention=*/false);
  bisd::BaselineScheme scheme;
  check_golden("baseline_seed5.log", serialize(scheme.diagnose(soc)));
}

TEST(GoldenTrace, EngineReportSeed11) {
  // One spec end-to-end through the engine, repair included: the record
  // stream, the cycle count and the repair plan are all pinned.
  const auto spec = core::SessionSpec::builder()
                        .add_srams(golden_configs())
                        .defect_rate(0.03)
                        .seed(11)
                        .with_repair(true)
                        .build();
  ASSERT_TRUE(spec.has_value());
  const auto report = core::DiagnosisEngine::execute(spec.value());
  std::ostringstream out;
  out << serialize(report.result);
  out << "repaired_rows=" << report.repair->repaired_row_count()
      << " unrepaired_rows=" << report.repair->unrepaired_row_count()
      << " verified_clean=" << (report.repair_verified_clean ? 1 : 0)
      << "\n";
  check_golden("engine_seed11.log", out.str());
}

}  // namespace
}  // namespace fastdiag

/// Custom main: gtest_main cannot learn flags, and the regen escape hatch
/// must be a first-class, documented switch.
int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--regen") {
      fastdiag::g_regen = true;
    }
  }
  if (std::getenv("FASTDIAG_REGEN_GOLDEN") != nullptr) {
    fastdiag::g_regen = true;
  }
  return RUN_ALL_TESTS();
}
