// Differential tests for the instance-sliced kernel and the SIMD dispatch
// facade.
//
// The instance_sliced access kernel (up to 64 identical-geometry fault-free
// memories as bit-lanes of one packed InstanceSlab) must be observably
// indistinguishable from word_parallel and from the per_cell reference —
// record for record, cycle for cycle, counter for counter — for every group
// size around the 64-lane boundary, for wrap emulation, for the full defect
// corpus on the non-sliced lanes, and at every SIMD dispatch level this CPU
// can run (simd::force walks scalar -> avx2 -> avx512).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/fastdiag.h"
#include "faults/composite_probe.h"

namespace fastdiag {
namespace {

using faults::FaultInstance;
using faults::FaultKind;
using sram::AccessKernel;
using sram::CellCoord;
using sram::SramConfig;

SramConfig cfg(const std::string& name, std::uint32_t words,
               std::uint32_t bits) {
  SramConfig config;
  config.name = name;
  config.words = words;
  config.bits = bits;
  config.spare_rows = 4;
  return config;
}

CellCoord random_cell(const SramConfig& config, Rng& rng) {
  return {static_cast<std::uint32_t>(rng.uniform(config.words)),
          static_cast<std::uint32_t>(rng.uniform(config.bits))};
}

/// The full defect corpus of the kernel differential suite: cell, coupling
/// and address fault families, including the time- and latch-dependent kinds.
std::vector<FaultInstance> random_fault_mix(const SramConfig& config,
                                            std::size_t count, Rng& rng) {
  std::vector<FaultInstance> out;
  static const FaultKind cell_kinds[] = {
      FaultKind::sa0,     FaultKind::sa1, FaultKind::tf_up,
      FaultKind::tf_down, FaultKind::sof, FaultKind::drf0,
      FaultKind::drf1,
  };
  static const FaultKind coupling_kinds[] = {
      FaultKind::cf_in_up,    FaultKind::cf_in_down, FaultKind::cf_id_up0,
      FaultKind::cf_id_up1,   FaultKind::cf_id_down0,
      FaultKind::cf_id_down1, FaultKind::cf_st_00,   FaultKind::cf_st_01,
      FaultKind::cf_st_10,    FaultKind::cf_st_11,
  };
  for (std::size_t i = 0; i < count; ++i) {
    switch (rng.uniform(3)) {
      case 0:
        out.push_back(faults::make_cell_fault(
            cell_kinds[rng.uniform(std::size(cell_kinds))],
            random_cell(config, rng)));
        break;
      case 1: {
        const auto aggressor = random_cell(config, rng);
        auto victim = random_cell(config, rng);
        if (rng.bernoulli(0.5)) {
          victim.row = aggressor.row;
        }
        if (victim == aggressor) {
          victim.bit = (victim.bit + 1) % config.bits;
          if (victim == aggressor) {
            victim.row = (victim.row + 1) % config.words;
          }
        }
        out.push_back(faults::make_coupling_fault(
            coupling_kinds[rng.uniform(std::size(coupling_kinds))], aggressor,
            victim));
        break;
      }
      default: {
        const auto addr =
            static_cast<std::uint32_t>(rng.uniform(config.words));
        if (config.words < 2 || rng.bernoulli(0.34)) {
          out.push_back(
              faults::make_address_fault(FaultKind::af_no_access, addr));
          break;
        }
        std::uint32_t other =
            static_cast<std::uint32_t>(rng.uniform(config.words - 1));
        if (other >= addr) {
          ++other;
        }
        out.push_back(faults::make_address_fault(
            rng.bernoulli(0.5) ? FaultKind::af_wrong_row
                               : FaultKind::af_extra_row,
            addr, other));
        break;
      }
    }
  }
  return out;
}

// ---- dispatch-level sweep helpers -----------------------------------------

std::vector<simd::IsaLevel> available_levels() {
  std::vector<simd::IsaLevel> levels{simd::IsaLevel::scalar};
  if (simd::detected_level() >= simd::IsaLevel::avx2) {
    levels.push_back(simd::IsaLevel::avx2);
  }
  if (simd::detected_level() >= simd::IsaLevel::avx512) {
    levels.push_back(simd::IsaLevel::avx512);
  }
  return levels;
}

/// Restores the pre-test dispatch level when a level sweep exits.
class LevelGuard {
 public:
  LevelGuard() : saved_(simd::active_level()) {}
  ~LevelGuard() { simd::force(saved_); }
  LevelGuard(const LevelGuard&) = delete;
  LevelGuard& operator=(const LevelGuard&) = delete;

 private:
  simd::IsaLevel saved_;
};

// ---- simd facade -----------------------------------------------------------

TEST(SimdDispatch, ParseAndNames) {
  EXPECT_EQ(simd::parse_isa("scalar"), simd::IsaLevel::scalar);
  EXPECT_EQ(simd::parse_isa("avx2"), simd::IsaLevel::avx2);
  EXPECT_EQ(simd::parse_isa("avx512"), simd::IsaLevel::avx512);
  EXPECT_FALSE(simd::parse_isa("sse9").has_value());
  for (const auto level : available_levels()) {
    EXPECT_EQ(simd::parse_isa(simd::isa_name(level)), level);
  }
}

TEST(SimdDispatch, ForceAboveDetectedIsRejected) {
  LevelGuard guard;
  if (simd::detected_level() < simd::IsaLevel::avx512) {
    EXPECT_FALSE(simd::force(simd::IsaLevel::avx512));
  }
  if (simd::detected_level() < simd::IsaLevel::avx2) {
    EXPECT_FALSE(simd::force(simd::IsaLevel::avx2));
  }
  // Every supported level must be selectable and visible via active_level().
  for (const auto level : available_levels()) {
    EXPECT_TRUE(simd::force(level));
    EXPECT_EQ(simd::active_level(), level);
    EXPECT_EQ(simd::dispatch().level, level);
  }
}

TEST(SimdDispatch, KernelsMatchScalarReferenceAtEveryLevel) {
  LevelGuard guard;
  Rng rng(404);
  for (const std::size_t n : {0ull, 1ull, 3ull, 4ull, 7ull, 8ull, 64ull,
                              130ull}) {
    std::vector<std::uint64_t> a(n), b(n), mask(n), fallback(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = rng.next_u64();
      b[i] = rng.next_u64();
      mask[i] = rng.next_u64();
      fallback[i] = rng.next_u64();
    }
    // Plain-loop references, computed once.
    std::vector<std::uint64_t> xor_ref = a;
    std::vector<std::uint64_t> blend_ref = a;
    std::uint64_t diff_ref = 0;
    for (std::size_t i = 0; i < n; ++i) {
      xor_ref[i] ^= b[i];
      blend_ref[i] = (a[i] & mask[i]) | (fallback[i] & ~mask[i]);
      diff_ref |= a[i] ^ b[i];
    }
    const std::uint64_t lane_mask = rng.next_u64();
    for (const auto level : available_levels()) {
      ASSERT_TRUE(simd::force(level));
      const auto& ops = simd::dispatch();
      const std::string label =
          std::string(simd::isa_name(level)) + " n=" + std::to_string(n);

      std::vector<std::uint64_t> out(n, 0);
      ops.copy_limbs(out.data(), a.data(), n);
      EXPECT_EQ(out, a) << "copy " << label;

      out = a;
      ops.xor_limbs(out.data(), b.data(), n);
      EXPECT_EQ(out, xor_ref) << "xor " << label;

      EXPECT_EQ(ops.diff_or(a.data(), b.data(), n), diff_ref)
          << "diff_or " << label;
      EXPECT_EQ(ops.diff_or(a.data(), a.data(), n), 0u)
          << "diff_or self " << label;

      out = a;
      ops.blend_limbs(out.data(), mask.data(), fallback.data(), n);
      EXPECT_EQ(out, blend_ref) << "blend " << label;

      EXPECT_EQ(ops.lane_diff_or(a.data(), b.data(), lane_mask, n),
                diff_ref & lane_mask)
          << "lane_diff_or " << label;

      // masked_lane_diff_or: like lane_diff_or but with a per-limb skip
      // mask (the read-exact bitmap of the probe slabs).
      std::uint64_t masked_ref = 0;
      for (std::size_t i = 0; i < n; ++i) {
        masked_ref |= (a[i] ^ b[i]) & ~mask[i];
      }
      masked_ref &= lane_mask;
      EXPECT_EQ(ops.masked_lane_diff_or(a.data(), b.data(), mask.data(),
                                        lane_mask, n),
                masked_ref)
          << "masked_lane_diff_or " << label;
      EXPECT_EQ(ops.masked_lane_diff_or(a.data(), a.data(), mask.data(),
                                        lane_mask, n),
                0u)
          << "masked_lane_diff_or self " << label;

      // diff_column_mask: per-limb (not folded) disagreement flags for a
      // chunk of <= 64 columns.
      const std::size_t chunk = std::min<std::size_t>(n, 64);
      std::uint64_t cols_ref = 0;
      for (std::size_t i = 0; i < chunk; ++i) {
        if (((a[i] ^ b[i]) & lane_mask) != 0) {
          cols_ref |= std::uint64_t{1} << i;
        }
      }
      EXPECT_EQ(ops.diff_column_mask(a.data(), b.data(), lane_mask, chunk),
                cols_ref)
          << "diff_column_mask " << label;
      EXPECT_EQ(ops.diff_column_mask(a.data(), a.data(), lane_mask, chunk),
                0u)
          << "diff_column_mask self " << label;
    }
  }
}

TEST(SimdDispatch, ExpandBitsMatchesScalarAtEveryLevel) {
  LevelGuard guard;
  Rng rng(405);
  for (const std::size_t n_bits : {1ull, 21ull, 63ull, 64ull, 65ull, 100ull,
                                   130ull}) {
    std::vector<std::uint64_t> packed((n_bits + 63) / 64);
    for (auto& limb : packed) {
      limb = rng.next_u64();
    }
    std::vector<std::uint64_t> reference(n_bits);
    for (std::size_t j = 0; j < n_bits; ++j) {
      reference[j] =
          ((packed[j >> 6] >> (j & 63)) & 1u) != 0 ? ~std::uint64_t{0} : 0;
    }
    for (const auto level : available_levels()) {
      ASSERT_TRUE(simd::force(level));
      std::vector<std::uint64_t> masks(n_bits, 0x5555);
      simd::dispatch().expand_bits(packed.data(), masks.data(), n_bits);
      EXPECT_EQ(masks, reference)
          << simd::isa_name(level) << " n_bits=" << n_bits;
    }
  }
}

TEST(SimdDispatch, TransposeMatchesNaiveAndIsAnInvolution) {
  Rng rng(406);
  std::uint64_t a[64];
  for (auto& row : a) {
    row = rng.next_u64();
  }
  std::uint64_t original[64];
  std::uint64_t naive[64] = {};
  for (int r = 0; r < 64; ++r) {
    original[r] = a[r];
    for (int c = 0; c < 64; ++c) {
      if ((a[r] >> c) & 1u) {
        naive[c] |= std::uint64_t{1} << r;
      }
    }
  }
  simd::transpose_64x64(a);
  for (int r = 0; r < 64; ++r) {
    EXPECT_EQ(a[r], naive[r]) << "row " << r;
  }
  simd::transpose_64x64(a);
  for (int r = 0; r < 64; ++r) {
    EXPECT_EQ(a[r], original[r]) << "involution row " << r;
  }
}

// ---- InstanceSlab ----------------------------------------------------------

TEST(InstanceSlab, GatherScatterRoundTripAndColumnDemux) {
  LevelGuard guard;
  Rng rng(500);
  for (const auto level : available_levels()) {
    ASSERT_TRUE(simd::force(level));
    for (const std::size_t lane_count : {1ull, 5ull, 64ull}) {
      const auto config = cfg("slab", 6, 70);
      std::vector<std::unique_ptr<sram::Sram>> memories;
      std::vector<sram::Sram*> lanes;
      for (std::size_t k = 0; k < lane_count; ++k) {
        memories.push_back(std::make_unique<sram::Sram>(config));
        for (int pokes = 0; pokes < 40; ++pokes) {
          memories.back()->poke(random_cell(config, rng),
                                rng.bernoulli(0.5));
        }
        lanes.push_back(memories.back().get());
      }
      sram::InstanceSlab slab(lanes);
      slab.gather();
      // column(row, bit) demuxes exactly lane k's cell (row, bit).
      for (std::uint32_t row = 0; row < config.words; ++row) {
        for (std::uint32_t bit = 0; bit < config.bits; ++bit) {
          const std::uint64_t column = slab.column(row, bit);
          for (std::size_t k = 0; k < lane_count; ++k) {
            EXPECT_EQ(((column >> k) & 1u) != 0,
                      memories[k]->peek({row, bit}))
                << "lane " << k << " row " << row << " bit " << bit;
          }
          EXPECT_EQ(column & ~slab.lane_mask(), 0u)
              << "unregistered lane bits must stay zero";
        }
      }
      // scatter() restores every lane bit for bit.
      std::vector<std::string> before;
      for (const auto& memory : memories) {
        before.push_back(memory->read(0).to_string());
      }
      slab.scatter();
      for (std::size_t k = 0; k < lane_count; ++k) {
        EXPECT_EQ(memories[k]->read(0).to_string(), before[k]);
        for (std::uint32_t row = 0; row < config.words; ++row) {
          for (std::uint32_t bit = 0; bit < config.bits; ++bit) {
            const std::uint64_t column = slab.column(row, bit);
            EXPECT_EQ(memories[k]->peek({row, bit}),
                      ((column >> k) & 1u) != 0);
          }
        }
      }
    }
  }
}

TEST(InstanceSlab, WriteRowAndCompareColumns) {
  LevelGuard guard;
  const auto config = cfg("wr", 4, 66);
  std::vector<std::unique_ptr<sram::Sram>> memories;
  std::vector<sram::Sram*> lanes;
  for (std::size_t k = 0; k < 3; ++k) {
    memories.push_back(std::make_unique<sram::Sram>(config));
    lanes.push_back(memories.back().get());
  }
  for (const auto level : available_levels()) {
    ASSERT_TRUE(simd::force(level));
    sram::InstanceSlab slab(lanes);
    slab.gather();

    BitVector word(config.bits);
    word.set(0, true);
    word.set(65, true);
    std::vector<std::uint64_t> bcast(config.bits);
    simd::dispatch().expand_bits(word.word_data(), bcast.data(), config.bits);
    slab.write_row(2, bcast.data());
    EXPECT_EQ(slab.compare_columns(2, bcast.data(), 0, config.bits), 0u);

    // Poke lane 1's bit 65 through the arena: flip exactly one lane bit.
    std::vector<std::uint64_t> expect = bcast;
    expect[65] ^= std::uint64_t{1} << 1;
    EXPECT_EQ(slab.compare_columns(2, expect.data(), 0, config.bits),
              std::uint64_t{1} << 1);
    EXPECT_EQ(slab.compare_columns(2, expect.data(), 0, 65), 0u)
        << "mismatch outside the compared column range must not register";
    slab.scatter();
    EXPECT_TRUE(memories[0]->peek({2, 0}));
    EXPECT_TRUE(memories[1]->peek({2, 65}));
    EXPECT_FALSE(memories[2]->peek({2, 33}));
  }
}

TEST(InstanceSlab, RejectsUnsliceableAndMismatchedLanes) {
  const auto config = cfg("bad", 4, 9);
  sram::Sram clean(config);
  sram::Sram faulty(config,
                    std::make_unique<faults::FaultSet>(
                        std::vector<FaultInstance>{faults::make_cell_fault(
                            FaultKind::sa0, CellCoord{1, 2})}));
  EXPECT_FALSE(faulty.sliceable());
  EXPECT_THROW(sram::InstanceSlab({&clean, &faulty}), std::exception);
  sram::Sram other(cfg("other", 4, 10));
  EXPECT_THROW(sram::InstanceSlab({&clean, &other}), std::exception);
  EXPECT_THROW(sram::InstanceSlab(std::vector<sram::Sram*>{}),
               std::exception);
}

// ---- MarchRunner::run_group vs per-memory run ------------------------------

void expect_run_identical(const march::RunResult& sliced,
                          const march::RunResult& reference,
                          const std::string& label) {
  EXPECT_EQ(sliced.ops, reference.ops) << label;
  EXPECT_EQ(sliced.elapsed_ns, reference.elapsed_ns) << label;
  ASSERT_EQ(sliced.mismatches.size(), reference.mismatches.size()) << label;
  for (std::size_t m = 0; m < sliced.mismatches.size(); ++m) {
    EXPECT_TRUE(sliced.mismatches[m] == reference.mismatches[m])
        << label << " mismatch #" << m;
  }
}

/// Builds a fleet of identical-geometry memories; lanes whose index is in
/// @p faulty_lanes carry a defect mix (and therefore stay on the per-memory
/// path under instance_sliced).
std::vector<std::unique_ptr<sram::Sram>> make_fleet(
    std::size_t count, AccessKernel kernel,
    const std::vector<std::size_t>& faulty_lanes, std::uint64_t seed) {
  Rng rng(seed);
  const auto config = cfg("lane", 6, 21);
  std::vector<std::unique_ptr<sram::Sram>> fleet;
  for (std::size_t i = 0; i < count; ++i) {
    auto lane_config = config;
    lane_config.name = "lane" + std::to_string(i);
    std::vector<FaultInstance> truth;
    if (std::find(faulty_lanes.begin(), faulty_lanes.end(), i) !=
        faulty_lanes.end()) {
      truth = random_fault_mix(lane_config, 1 + rng.uniform(4), rng);
    }
    fleet.push_back(std::make_unique<sram::Sram>(
        lane_config, std::make_unique<faults::FaultSet>(truth)));
    fleet.back()->set_access_kernel(kernel);
  }
  return fleet;
}

TEST(RunGroup, MatchesPerMemoryRunAcrossSizesAndLevels) {
  LevelGuard guard;
  const auto test = march::march_cw(21);
  for (const auto level : available_levels()) {
    ASSERT_TRUE(simd::force(level));
    for (const std::size_t count : {1ull, 63ull, 64ull, 65ull}) {
      // A few faulty lanes scattered through the group exercise the
      // mixed sliced/direct partition; the rest ride the packed path.
      const std::vector<std::size_t> faulty{0, count / 2, count - 1};
      auto sliced_fleet =
          make_fleet(count, AccessKernel::instance_sliced, faulty, 77);
      auto ref_fleet =
          make_fleet(count, AccessKernel::word_parallel, faulty, 77);

      std::vector<sram::Sram*> group;
      for (const auto& lane : sliced_fleet) {
        group.push_back(lane.get());
      }
      const march::MarchRunner runner;
      const auto results = runner.run_group(group, test);
      ASSERT_EQ(results.size(), count);
      for (std::size_t i = 0; i < count; ++i) {
        const auto reference = runner.run(*ref_fleet[i], test);
        const std::string label = std::string(simd::isa_name(level)) +
                                  " count=" + std::to_string(count) +
                                  " lane " + std::to_string(i);
        expect_run_identical(results[i], reference, label);
        EXPECT_EQ(sliced_fleet[i]->now_ns(), ref_fleet[i]->now_ns()) << label;
        EXPECT_EQ(sliced_fleet[i]->counters().reads,
                  ref_fleet[i]->counters().reads)
            << label;
        EXPECT_EQ(sliced_fleet[i]->counters().writes,
                  ref_fleet[i]->counters().writes)
            << label;
        // End-of-run contents must scatter back bit-identically.
        for (std::uint32_t row = 0; row < sliced_fleet[i]->words(); ++row) {
          EXPECT_EQ(sliced_fleet[i]->read(row), ref_fleet[i]->read(row))
              << label << " row " << row;
        }
      }
    }
  }
}

TEST(RunGroup, WrapEmulationMatchesPerMemoryRun) {
  LevelGuard guard;
  const auto test = march::march_cw_nwrtm(21);
  for (const auto level : available_levels()) {
    ASSERT_TRUE(simd::force(level));
    auto sliced_fleet =
        make_fleet(9, AccessKernel::instance_sliced, {3}, 1234);
    auto ref_fleet = make_fleet(9, AccessKernel::word_parallel, {3}, 1234);
    std::vector<sram::Sram*> group;
    for (const auto& lane : sliced_fleet) {
      group.push_back(lane.get());
    }
    const march::MarchRunner runner;
    // global_words above the capacity: every element revisits each row,
    // which routes the sliced expectation through the shared golden shadow.
    const auto results = runner.run_group(group, test, /*global_words=*/16);
    for (std::size_t i = 0; i < group.size(); ++i) {
      const auto reference = runner.run(*ref_fleet[i], test, 16);
      expect_run_identical(results[i], reference,
                           std::string(simd::isa_name(level)) + " lane " +
                               std::to_string(i));
    }
  }
}

// ---- InstanceSlab exactness bitmaps (probe-slab support) -------------------

TEST(InstanceSlab, ExactnessBitmapsMaskWritesAndCompares) {
  LevelGuard guard;
  for (const auto level : available_levels()) {
    ASSERT_TRUE(simd::force(level));
    sram::InstanceSlab slab(/*rows=*/3, /*bits=*/70, /*lane_count=*/5);
    EXPECT_EQ(slab.lane_count(), 5u);
    EXPECT_EQ(slab.lane_mask(), 0x1Fu);
    // Standalone slabs have no lane memories to gather from / scatter to.
    EXPECT_THROW(slab.gather(), std::exception);
    EXPECT_THROW(slab.scatter(), std::exception);

    // Seed lane 3's cell (1, 66) and pin it write-exact; the broadcast
    // write must preserve exactly that slot and overwrite every other.
    slab.row_mut(1)[66] |= std::uint64_t{1} << 3;
    slab.mark_write_exact(3, 1, 66);
    EXPECT_TRUE(slab.row_has_write_exact(1));
    EXPECT_FALSE(slab.row_has_write_exact(0));

    std::vector<std::uint64_t> zeros(70, 0);
    std::vector<std::uint64_t> ones(70, ~std::uint64_t{0});
    slab.write_row_masked(1, zeros.data());
    EXPECT_EQ(slab.column(1, 66), std::uint64_t{1} << 3)
        << "write-exact slot must survive the broadcast";
    EXPECT_EQ(slab.column(1, 65), 0u);
    slab.write_row_masked(0, ones.data());
    EXPECT_EQ(slab.column(0, 7) & slab.lane_mask(), 0x1Fu)
        << "clean rows take the plain copy";

    // The packed compare sees the preserved slot as a mismatch against the
    // all-zero expectation — unless the slot is also marked read-exact.
    EXPECT_EQ(slab.compare_columns_masked(1, zeros.data(), 0, 70),
              std::uint64_t{1} << 3);
    EXPECT_EQ(slab.mismatch_columns(1, zeros.data(), 64),
              std::uint64_t{1} << (66 - 64));
    EXPECT_EQ(slab.mismatch_columns(1, zeros.data(), 0), 0u);
    slab.mark_read_exact(3, 1, 66);
    EXPECT_TRUE(slab.row_has_read_exact(1));
    EXPECT_EQ(slab.read_exact_mask(1, 66), std::uint64_t{1} << 3);
    EXPECT_EQ(slab.compare_columns_masked(1, zeros.data(), 0, 70), 0u)
        << "read-exact slots never contribute a packed mismatch";
    // The unmasked compare and the raw column demux stay oblivious: the
    // probe-batch read path subtracts the read-exact mask per column.
    EXPECT_EQ(slab.compare_columns(1, zeros.data(), 0, 70),
              std::uint64_t{1} << 3);
  }
}

// ---- MarchRunner::run_group_per_cell vs per-probe run_per_cell -------------

/// Deterministic candidate list for probe lane @p i against @p config:
/// cycles through every packable fault kind, alternates same-word and
/// distinct-row aggressors, and gives every third lane a second disjoint
/// candidate.  Geometry must have >= 4 words and >= 5 bits so the cells
/// stay pairwise disjoint (the CompositeProbeBehavior packing contract).
std::vector<FaultInstance> probe_lane_candidates(std::size_t i,
                                                 const SramConfig& config) {
  static const FaultKind kinds[] = {
      FaultKind::sa0,        FaultKind::sa1,        FaultKind::tf_up,
      FaultKind::tf_down,    FaultKind::sof,        FaultKind::drf0,
      FaultKind::drf1,       FaultKind::cf_in_up,   FaultKind::cf_in_down,
      FaultKind::cf_id_up0,  FaultKind::cf_id_up1,  FaultKind::cf_id_down0,
      FaultKind::cf_id_down1, FaultKind::cf_st_00,  FaultKind::cf_st_01,
      FaultKind::cf_st_10,   FaultKind::cf_st_11,
  };
  const auto make = [&](std::size_t kind_index, std::uint32_t row,
                        std::uint32_t bit, bool same_row) {
    const auto kind = kinds[kind_index % std::size(kinds)];
    const CellCoord victim{row % config.words, bit % config.bits};
    if (!faults::needs_aggressor(kind)) {
      return faults::make_cell_fault(kind, victim);
    }
    const CellCoord aggressor{
        same_row ? victim.row : (victim.row + 1) % config.words,
        (victim.bit + 1) % config.bits};
    return faults::make_coupling_fault(kind, aggressor, victim);
  };
  std::vector<FaultInstance> lane;
  const auto row = static_cast<std::uint32_t>(i);
  const auto bit = static_cast<std::uint32_t>(i * 3);
  lane.push_back(make(i, row, bit, i % 2 == 0));
  if (i % 3 == 0) {
    lane.push_back(make(i + 7, row + 2, bit + 3, i % 2 == 1));
  }
  return lane;
}

TEST(RunGroupPerCell, MatchesPerProbeRunAcrossSizesAndLevels) {
  LevelGuard guard;
  auto probe_config = cfg("probe", 5, 7);
  probe_config.spare_rows = 0;
  const auto test = march::march_cw_nwrtm(probe_config.bits);
  const march::MarchRunner runner;

  for (const std::size_t count : {1ull, 5ull, 63ull, 64ull, 65ull}) {
    std::vector<std::vector<FaultInstance>> lanes;
    for (std::size_t i = 0; i < count; ++i) {
      lanes.push_back(probe_lane_candidates(i, probe_config));
    }
    // The reference: each lane's candidates in its own composite probe
    // memory, replayed one at a time (the bit_sliced builder's engine).
    std::vector<std::map<CellCoord, std::vector<march::ReadEvent>>> expected;
    for (const auto& lane : lanes) {
      auto behavior = std::make_unique<faults::CompositeProbeBehavior>();
      for (const auto& fault : lane) {
        behavior->add_candidate(fault);
      }
      sram::Sram memory(probe_config, std::move(behavior));
      expected.push_back(runner.run_per_cell(memory, test));
    }
    for (const auto level : available_levels()) {
      ASSERT_TRUE(simd::force(level));
      const auto results =
          runner.run_group_per_cell(probe_config, lanes, test);
      ASSERT_EQ(results.size(), count);
      for (std::size_t i = 0; i < count; ++i) {
        EXPECT_TRUE(results[i] == expected[i])
            << simd::isa_name(level) << " count=" << count << " lane " << i
            << " (" << results[i].size() << " vs " << expected[i].size()
            << " failing cells)";
      }
    }
  }
}

TEST(RunGroupPerCell, WrapEmulationMatchesPerProbeRun) {
  LevelGuard guard;
  auto probe_config = cfg("probe", 5, 7);
  probe_config.spare_rows = 0;
  const auto test = march::march_cw_nwrtm(probe_config.bits);
  const march::MarchRunner runner;
  // global_words above the capacity: revisit expectations come from the
  // golden shadow, exercising the wrap demux of the probe batches.
  const std::uint32_t sweep = 12;

  std::vector<std::vector<FaultInstance>> lanes;
  for (std::size_t i = 0; i < 21; ++i) {
    lanes.push_back(probe_lane_candidates(i, probe_config));
  }
  std::vector<std::map<CellCoord, std::vector<march::ReadEvent>>> expected;
  for (const auto& lane : lanes) {
    auto behavior = std::make_unique<faults::CompositeProbeBehavior>();
    for (const auto& fault : lane) {
      behavior->add_candidate(fault);
    }
    sram::Sram memory(probe_config, std::move(behavior));
    expected.push_back(runner.run_per_cell(memory, test, sweep));
  }
  for (const auto level : available_levels()) {
    ASSERT_TRUE(simd::force(level));
    const auto results =
        runner.run_group_per_cell(probe_config, lanes, test, sweep);
    for (std::size_t i = 0; i < lanes.size(); ++i) {
      EXPECT_TRUE(results[i] == expected[i])
          << simd::isa_name(level) << " lane " << i;
    }
  }
}

// ---- FastScheme / engine: instance_sliced vs the reference kernels --------

/// A SoC whose fleet mixes clean identical-geometry lanes (sliceable), a few
/// faulty lanes of the same geometry, and one odd-geometry memory.
bisd::SocUnderTest make_sliced_soc(std::size_t clean_count,
                                   AccessKernel kernel, std::uint64_t seed,
                                   bool idle_everywhere = true,
                                   bool with_odd = true) {
  Rng rng(seed);
  bisd::SocUnderTest soc;
  for (std::size_t i = 0; i < clean_count; ++i) {
    auto config = cfg("lane" + std::to_string(i), 8, 21);
    std::vector<FaultInstance> truth;
    if (i % 7 == 3) {
      // Heterogeneous defect rates: some lanes carry 1..4 faults, the rest
      // are clean — only the clean ones slice.
      truth = random_fault_mix(config, 1 + rng.uniform(4), rng);
    }
    soc.add_memory(config, std::move(truth));
  }
  if (with_odd) {
    auto odd = cfg("odd", 12, 33);
    odd.has_idle_mode = idle_everywhere;
    soc.add_memory(odd, random_fault_mix(odd, 3, rng));
  }
  soc.set_access_kernel(kernel);
  return soc;
}

void expect_scheme_identical(bisd::SocUnderTest& sliced_soc,
                             bisd::SocUnderTest& ref_soc,
                             const std::string& label) {
  bisd::FastScheme sliced_scheme;
  bisd::FastScheme ref_scheme;
  const auto sliced = sliced_scheme.diagnose(sliced_soc);
  const auto reference = ref_scheme.diagnose(ref_soc);
  EXPECT_EQ(sliced.time.cycles, reference.time.cycles) << label;
  EXPECT_EQ(sliced.log.to_csv(), reference.log.to_csv()) << label;
  ASSERT_EQ(sliced_soc.memory_count(), ref_soc.memory_count()) << label;
  for (std::size_t i = 0; i < sliced_soc.memory_count(); ++i) {
    auto& a = sliced_soc.memory(i);
    auto& b = ref_soc.memory(i);
    EXPECT_EQ(a.now_ns(), b.now_ns()) << label << " memory " << i;
    EXPECT_EQ(a.counters().reads, b.counters().reads)
        << label << " memory " << i;
    EXPECT_EQ(a.counters().writes, b.counters().writes)
        << label << " memory " << i;
    EXPECT_EQ(a.counters().nwrc_writes, b.counters().nwrc_writes)
        << label << " memory " << i;
    for (std::uint32_t row = 0; row < a.words(); ++row) {
      ASSERT_EQ(a.read(row), b.read(row))
          << label << " memory " << i << " row " << row;
    }
  }
}

TEST(InstanceSliced, FastSchemeMatchesWordParallelAcrossGroupSizes) {
  LevelGuard guard;
  for (const auto level : available_levels()) {
    ASSERT_TRUE(simd::force(level));
    for (const std::size_t count : {1ull, 63ull, 64ull, 65ull}) {
      auto sliced_soc =
          make_sliced_soc(count, AccessKernel::instance_sliced, 42);
      auto ref_soc = make_sliced_soc(count, AccessKernel::word_parallel, 42);
      expect_scheme_identical(sliced_soc, ref_soc,
                              std::string(simd::isa_name(level)) +
                                  " count=" + std::to_string(count));
    }
  }
}

TEST(InstanceSliced, FastSchemeMatchesPerCellReference) {
  LevelGuard guard;
  for (const auto level : available_levels()) {
    ASSERT_TRUE(simd::force(level));
    auto sliced_soc = make_sliced_soc(17, AccessKernel::instance_sliced, 9);
    auto ref_soc = make_sliced_soc(17, AccessKernel::per_cell, 9);
    expect_scheme_identical(sliced_soc, ref_soc, simd::isa_name(level));
  }
}

TEST(InstanceSliced, PerClockSerializationPathMatchesReference) {
  // One memory without idle mode forces the per-clock serialization loop
  // while the clean lanes still advance through the packed slab.
  LevelGuard guard;
  for (const auto level : available_levels()) {
    ASSERT_TRUE(simd::force(level));
    auto sliced_soc = make_sliced_soc(12, AccessKernel::instance_sliced, 21,
                                      /*idle_everywhere=*/false);
    auto ref_soc = make_sliced_soc(12, AccessKernel::word_parallel, 21,
                                   /*idle_everywhere=*/false);
    expect_scheme_identical(sliced_soc, ref_soc, simd::isa_name(level));
  }
}

TEST(InstanceSliced, SliceGroupsChunkAt64InIndexOrder) {
  bisd::SocUnderTest soc;
  for (int i = 0; i < 65; ++i) {
    soc.add_memory(cfg("c" + std::to_string(i), 8, 21));
  }
  soc.add_memory(cfg("odd", 12, 33));       // different geometry: own group
  auto no_idle = cfg("busy", 8, 21);
  no_idle.has_idle_mode = false;
  soc.add_memory(no_idle);                  // idle-less: never grouped
  soc.set_access_kernel(AccessKernel::instance_sliced);

  const auto groups = soc.slice_groups();
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0].members.size(), 64u);  // the 65th opens a new group
  EXPECT_EQ(groups[1].members.size(), 1u);
  EXPECT_EQ(groups[2].members.size(), 1u);
  EXPECT_EQ(groups[2].members.front(), 65u);  // the odd-geometry memory
  for (const auto& group : groups) {
    EXPECT_TRUE(std::is_sorted(group.members.begin(), group.members.end()));
    for (const auto m : group.members) {
      EXPECT_TRUE(soc.memory(m).sliceable());
      EXPECT_NE(m, 66u) << "idle-less memories must stay ungrouped";
    }
  }
}

TEST(InstanceSliced, BaselineSchemeTreatsSlicedAsWordParallel) {
  // BaselineScheme has no group path: under instance_sliced every memory
  // simply runs its word-parallel port, bit-identical to word_parallel.
  auto sliced_soc = make_sliced_soc(6, AccessKernel::instance_sliced, 8);
  auto ref_soc = make_sliced_soc(6, AccessKernel::word_parallel, 8);
  bisd::BaselineScheme sliced_scheme;
  bisd::BaselineScheme ref_scheme;
  const auto sliced = sliced_scheme.diagnose(sliced_soc);
  const auto reference = ref_scheme.diagnose(ref_soc);
  EXPECT_EQ(sliced.time.cycles, reference.time.cycles);
  EXPECT_EQ(sliced.log.to_csv(), reference.log.to_csv());
}

TEST(InstanceSliced, EngineSpecSelectionIsBitIdentical) {
  const auto make_spec = [](AccessKernel kernel) {
    auto builder = core::SessionSpec::builder();
    for (int i = 0; i < 6; ++i) {
      builder.add_sram(cfg("f" + std::to_string(i), 16, 24));
    }
    return builder.add_sram(cfg("wide", 12, 40))
        .defect_rate(0.004)
        .seed(13)
        .access_kernel(kernel)
        .build();
  };
  auto sliced_spec = make_spec(AccessKernel::instance_sliced);
  auto ref_spec = make_spec(AccessKernel::word_parallel);
  ASSERT_TRUE(sliced_spec.has_value());
  ASSERT_TRUE(ref_spec.has_value());

  const core::DiagnosisEngine engine({.workers = 1});
  const auto sliced = engine.run_batch({sliced_spec.value()});
  const auto reference = engine.run_batch({ref_spec.value()});
  ASSERT_EQ(sliced.run_count(), 1u);
  ASSERT_EQ(reference.run_count(), 1u);
  EXPECT_EQ(sliced.runs[0].result.log.to_csv(),
            reference.runs[0].result.log.to_csv());
  EXPECT_EQ(sliced.runs[0].result.time.cycles,
            reference.runs[0].result.time.cycles);
  EXPECT_EQ(sliced.runs[0].injected_faults, reference.runs[0].injected_faults);
}

}  // namespace
}  // namespace fastdiag
