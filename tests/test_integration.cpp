// Cross-module integration and property tests: randomized differential
// checks between the layers (runner vs. fast scheme, fault engine vs.
// golden model), full diagnose-repair-verify lifecycles, and determinism.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "core/fastdiag.h"

namespace fastdiag {
namespace {

using faults::FaultInstance;
using faults::FaultKind;
using sram::CellCoord;
using sram::SramConfig;

SramConfig cfg(std::uint32_t words, std::uint32_t bits,
               std::uint32_t spares = 8) {
  SramConfig config;
  config.name = "i" + std::to_string(words) + "x" + std::to_string(bits);
  config.words = words;
  config.bits = bits;
  config.spare_rows = spares;
  return config;
}

/// Draws a random population of non-SOF logic faults (SOF detection is
/// boundary-dependent; these properties need determinate full coverage).
std::vector<FaultInstance> random_logic_faults(const SramConfig& config,
                                               std::size_t count, Rng& rng) {
  std::vector<FaultInstance> out;
  const auto sites =
      rng.sample_without_replacement(config.cell_count(), count * 2);
  std::size_t next_site = 0;
  const auto take_cell = [&] {
    const auto site = sites[next_site++];
    return CellCoord{static_cast<std::uint32_t>(site / config.bits),
                     static_cast<std::uint32_t>(site % config.bits)};
  };
  for (std::size_t i = 0; i < count; ++i) {
    switch (rng.uniform(4)) {
      case 0:
        out.push_back(faults::make_cell_fault(
            rng.bernoulli(0.5) ? FaultKind::sa0 : FaultKind::sa1,
            take_cell()));
        break;
      case 1:
        out.push_back(faults::make_cell_fault(
            rng.bernoulli(0.5) ? FaultKind::tf_up : FaultKind::tf_down,
            take_cell()));
        break;
      case 2: {
        const auto aggressor = take_cell();
        auto victim = take_cell();
        if (victim == aggressor) {
          victim.bit = (victim.bit + 1) % config.bits;
        }
        static const FaultKind kinds[] = {
            FaultKind::cf_in_up,   FaultKind::cf_in_down,
            FaultKind::cf_id_up0,  FaultKind::cf_id_up1,
            FaultKind::cf_id_down0, FaultKind::cf_id_down1,
            FaultKind::cf_st_00,   FaultKind::cf_st_01,
            FaultKind::cf_st_10,   FaultKind::cf_st_11,
        };
        out.push_back(faults::make_coupling_fault(
            kinds[rng.uniform(std::size(kinds))], aggressor, victim));
        break;
      }
      default: {
        const auto cell = take_cell();
        std::uint32_t other =
            static_cast<std::uint32_t>(rng.uniform(config.words - 1));
        if (other >= cell.row) {
          ++other;
        }
        out.push_back(faults::make_address_fault(FaultKind::af_extra_row,
                                                 cell.row, other));
        break;
      }
    }
  }
  return out;
}

// ---- runner vs. fast scheme differential ---------------------------------

TEST(Differential, FastSchemeAgreesWithRunnerOnSingleMemory) {
  // Property: for a single memory, the set of cells the fast scheme logs
  // equals the suspect set of the word-parallel runner executing the same
  // algorithm — the SPC/PSC plumbing must be transparent.
  Rng rng(1234);
  for (int trial = 0; trial < 12; ++trial) {
    const auto config = cfg(16, 8);
    const auto truth = random_logic_faults(config, 1 + rng.uniform(4), rng);

    sram::Sram standalone(config,
                          std::make_unique<faults::FaultSet>(truth));
    const auto runner_result = march::MarchRunner().run(
        standalone, march::march_cw_nwrtm(config.bits));

    bisd::SocUnderTest soc;
    soc.add_memory(config, truth);
    bisd::FastScheme scheme;
    const auto scheme_result = scheme.diagnose(soc);

    const auto suspects = runner_result.suspect_cells();  // sorted unique
    const std::set<sram::CellCoord> suspect_set(suspects.begin(),
                                                suspects.end());
    EXPECT_EQ(scheme_result.log.cells(0), suspect_set) << "trial " << trial;
  }
}

TEST(Differential, FaultFreeMemoryMatchesGoldenUnderRandomTraffic) {
  // Property: a Sram with an *empty* FaultSet is indistinguishable from a
  // plain golden memory under arbitrary operation sequences.
  Rng rng(77);
  const auto config = cfg(16, 8);
  sram::Sram faulty(config, std::make_unique<faults::FaultSet>());
  sram::Sram golden(config);
  for (int step = 0; step < 2000; ++step) {
    const auto addr = static_cast<std::uint32_t>(rng.uniform(config.words));
    switch (rng.uniform(3)) {
      case 0: {
        const auto value = BitVector::from_value(
            config.bits, rng.next_u64() & 0xFFu);
        faulty.write(addr, value);
        golden.write(addr, value);
        break;
      }
      case 1: {
        const auto value = BitVector::from_value(
            config.bits, rng.next_u64() & 0xFFu);
        faulty.nwrc_write(addr, value);
        golden.nwrc_write(addr, value);
        break;
      }
      default:
        ASSERT_EQ(faulty.read(addr), golden.read(addr)) << "step " << step;
    }
  }
}

// ---- lifecycle ------------------------------------------------------------

TEST(Lifecycle, DiagnoseRepairVerifyAcrossRandomPopulations) {
  Rng rng(555);
  for (int trial = 0; trial < 8; ++trial) {
    const auto config = cfg(32, 8, 32);
    const auto truth = random_logic_faults(config, 3 + rng.uniform(5), rng);

    bisd::SocUnderTest soc;
    soc.add_memory(config, truth);
    bisd::FastScheme scheme;

    const auto first = scheme.diagnose(soc);
    const auto report =
        faults::match_diagnosis(truth, first.log.cells(0), config);
    EXPECT_DOUBLE_EQ(report.recall(), 1.0) << "trial " << trial;

    const auto plan = bisd::plan_repair(first.log, soc);
    ASSERT_TRUE(plan.fully_repairable()) << "trial " << trial;
    bisd::apply_repair(soc, plan);

    const auto second = scheme.diagnose(soc);
    EXPECT_TRUE(second.log.empty()) << "trial " << trial;
  }
}

TEST(Lifecycle, BaselineAndFastAgreeOnFaultyRowsOfRepairablePopulations) {
  // Row-level agreement: with ample spares, the iterative baseline must
  // eventually identify the same faulty rows the fast scheme sees at once
  // (modulo SOF-free populations).
  Rng rng(889);
  for (int trial = 0; trial < 6; ++trial) {
    const auto config = cfg(32, 8, 32);
    const auto truth = random_logic_faults(config, 2 + rng.uniform(4), rng);

    bisd::SocUnderTest fast_soc;
    fast_soc.add_memory(config, truth);
    bisd::FastSchemeOptions options;
    options.include_drf = false;
    bisd::FastScheme fast(options);
    const auto fast_rows = fast.diagnose(fast_soc).log.faulty_rows(0);

    bisd::SocUnderTest base_soc;
    base_soc.add_memory(config, truth);
    bisd::BaselineScheme baseline;
    const auto base_rows = baseline.diagnose(base_soc).log.faulty_rows(0);

    // The baseline's candidates can include the aggressor row of a coupling
    // fault the fast scheme attributes to the victim row (both are in the
    // footprint); require fast ⊆ base ∪ footprint-rows instead of equality.
    std::set<std::uint32_t> footprint_rows;
    for (const auto& fault : truth) {
      for (const auto& cell : fault.footprint(config)) {
        footprint_rows.insert(cell.row);
      }
    }
    for (const auto row : fast_rows) {
      EXPECT_TRUE(footprint_rows.count(row) != 0)
          << "fast row " << row << " not explained, trial " << trial;
    }
    for (const auto row : base_rows) {
      EXPECT_TRUE(footprint_rows.count(row) != 0)
          << "baseline row " << row << " not explained, trial " << trial;
    }
    // Every fault is found by both at row granularity.
    const auto rows_of = [&](const std::set<std::uint32_t>& diagnosed) {
      std::size_t matched = 0;
      for (const auto& fault : truth) {
        for (const auto& cell : fault.footprint(config)) {
          if (diagnosed.count(cell.row) != 0) {
            ++matched;
            break;
          }
        }
      }
      return matched;
    };
    EXPECT_EQ(rows_of(fast_rows), truth.size()) << "trial " << trial;
    EXPECT_EQ(rows_of(base_rows), truth.size()) << "trial " << trial;
  }
}

// ---- scan-out -------------------------------------------------------------

TEST(ScanOut, CsvExportRoundTripsTheRecords) {
  bisd::SocUnderTest soc;
  soc.add_memory(cfg(16, 4),
                 {faults::make_cell_fault(FaultKind::sa0, {3, 2})});
  bisd::FastScheme scheme;
  const auto result = scheme.diagnose(soc);
  const auto csv = result.log.to_csv();
  EXPECT_NE(csv.find("memory,addr,bit,background,phase,element,op,visit,cycle"),
            std::string::npos);
  EXPECT_NE(csv.find("0,3,2,"), std::string::npos);
  // One header line plus one line per record.
  const auto lines = std::count(csv.begin(), csv.end(), '\n');
  EXPECT_EQ(static_cast<std::size_t>(lines),
            result.log.records().size() + 1);
}

// ---- determinism ----------------------------------------------------------

TEST(Determinism, WholePipelineIsBitExactUnderSeeds) {
  const auto run = [] {
    const auto spec = core::SessionSpec::builder()
                          .add_sram(cfg(32, 8, 32))
                          .add_sram(cfg(16, 12, 16))
                          .defect_rate(0.03)
                          .seed(31415)
                          .with_repair(true)
                          .build();
    EXPECT_TRUE(spec.has_value());
    return core::DiagnosisEngine::execute(spec.value());
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.result.log.to_csv(), b.result.log.to_csv());
  EXPECT_EQ(a.result.time.cycles, b.result.time.cycles);
  EXPECT_EQ(a.repair->repaired_row_count(), b.repair->repaired_row_count());
}

TEST(Determinism, BatchResultsAreIndependentOfWorkerInterleaving) {
  // The cross-module version of the engine guarantee: a batch mixing
  // repair flows and heterogeneous SoCs replays bit-exactly at any
  // worker count, and execute() of the same spec matches the batch entry.
  core::SweepSpec sweep;
  sweep.base = core::SessionSpec::builder()
                   .add_sram(cfg(32, 8, 32))
                   .add_sram(cfg(16, 12, 16))
                   .with_repair(true);
  sweep.defect_rates = {0.01, 0.03};
  sweep.seeds = {271, 828};
  const auto specs = sweep.expand();
  ASSERT_TRUE(specs.has_value());

  const auto serial =
      core::DiagnosisEngine({.workers = 1}).run_batch(specs.value());
  const auto parallel =
      core::DiagnosisEngine({.workers = 8}).run_batch(specs.value());
  ASSERT_EQ(serial.run_count(), parallel.run_count());
  for (std::size_t i = 0; i < serial.run_count(); ++i) {
    EXPECT_EQ(serial.runs[i].result.log.to_csv(),
              parallel.runs[i].result.log.to_csv());
    const auto solo = core::DiagnosisEngine::execute(specs.value()[i]);
    EXPECT_EQ(solo.result.log.to_csv(),
              serial.runs[i].result.log.to_csv());
  }
}

}  // namespace
}  // namespace fastdiag
