// Differential tests for the word-parallel simulation kernel.
//
// The word_parallel access kernel (packed CellArray arena, word-level
// FaultBehavior hooks, batched SPC/PSC shifting) must be observably
// indistinguishable from the per_cell reference kernel — mismatch for
// mismatch, op for op, cycle for cycle — across randomized geometries
// (including words wider than one 64-bit limb) and defect mixes (stuck-at,
// transition, stuck-open, DRF/NWRTM, intra- and inter-word coupling,
// address faults).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "core/fastdiag.h"

namespace fastdiag {
namespace {

using faults::FaultInstance;
using faults::FaultKind;
using sram::AccessKernel;
using sram::CellCoord;
using sram::SramConfig;

SramConfig cfg(const std::string& name, std::uint32_t words,
               std::uint32_t bits) {
  SramConfig config;
  config.name = name;
  config.words = words;
  config.bits = bits;
  config.spare_rows = 4;
  return config;
}

CellCoord random_cell(const SramConfig& config, Rng& rng) {
  return {static_cast<std::uint32_t>(rng.uniform(config.words)),
          static_cast<std::uint32_t>(rng.uniform(config.bits))};
}

/// A defect mix covering every fault family the engine models, including
/// the kinds with time- and latch-dependent semantics (DRF, SOF).
std::vector<FaultInstance> random_fault_mix(const SramConfig& config,
                                            std::size_t count, Rng& rng) {
  std::vector<FaultInstance> out;
  static const FaultKind cell_kinds[] = {
      FaultKind::sa0,  FaultKind::sa1,  FaultKind::tf_up,
      FaultKind::tf_down, FaultKind::sof, FaultKind::drf0, FaultKind::drf1,
  };
  static const FaultKind coupling_kinds[] = {
      FaultKind::cf_in_up,    FaultKind::cf_in_down, FaultKind::cf_id_up0,
      FaultKind::cf_id_up1,   FaultKind::cf_id_down0,
      FaultKind::cf_id_down1, FaultKind::cf_st_00,   FaultKind::cf_st_01,
      FaultKind::cf_st_10,    FaultKind::cf_st_11,
  };
  for (std::size_t i = 0; i < count; ++i) {
    switch (rng.uniform(3)) {
      case 0:
        out.push_back(faults::make_cell_fault(
            cell_kinds[rng.uniform(std::size(cell_kinds))],
            random_cell(config, rng)));
        break;
      case 1: {
        const auto aggressor = random_cell(config, rng);
        auto victim = random_cell(config, rng);
        if (rng.bernoulli(0.5)) {
          victim.row = aggressor.row;  // force the intra-word bracketing path
        }
        if (victim == aggressor) {
          victim.bit = (victim.bit + 1) % config.bits;
          if (victim == aggressor) {
            victim.row = (victim.row + 1) % config.words;
          }
        }
        out.push_back(faults::make_coupling_fault(
            coupling_kinds[rng.uniform(std::size(coupling_kinds))], aggressor,
            victim));
        break;
      }
      default: {
        const auto addr =
            static_cast<std::uint32_t>(rng.uniform(config.words));
        if (config.words < 2 || rng.bernoulli(0.34)) {
          out.push_back(
              faults::make_address_fault(FaultKind::af_no_access, addr));
          break;
        }
        std::uint32_t other =
            static_cast<std::uint32_t>(rng.uniform(config.words - 1));
        if (other >= addr) {
          ++other;
        }
        out.push_back(faults::make_address_fault(
            rng.bernoulli(0.5) ? FaultKind::af_wrong_row
                               : FaultKind::af_extra_row,
            addr, other));
        break;
      }
    }
  }
  return out;
}

march::RunResult run_march(const SramConfig& config,
                           const std::vector<FaultInstance>& truth,
                           const march::MarchTest& test,
                           AccessKernel kernel) {
  sram::Sram memory(config, std::make_unique<faults::FaultSet>(truth));
  memory.set_access_kernel(kernel);
  auto result = march::MarchRunner().run(memory, test);
  return result;
}

void expect_identical(const march::RunResult& fast,
                      const march::RunResult& reference,
                      const std::string& label) {
  EXPECT_EQ(fast.ops, reference.ops) << label;
  EXPECT_EQ(fast.elapsed_ns, reference.elapsed_ns) << label;
  ASSERT_EQ(fast.mismatches.size(), reference.mismatches.size()) << label;
  for (std::size_t m = 0; m < fast.mismatches.size(); ++m) {
    EXPECT_TRUE(fast.mismatches[m] == reference.mismatches[m])
        << label << " mismatch #" << m;
  }
}

// ---- MarchRunner: word kernel vs. per-cell reference ----------------------

TEST(KernelDifferential, RandomGeometriesAndDefectMixes) {
  Rng rng(2026);
  for (int trial = 0; trial < 30; ++trial) {
    // Widths straddle the 64-bit limb boundary on purpose.
    const auto words = static_cast<std::uint32_t>(rng.uniform_in(2, 40));
    const auto bits = static_cast<std::uint32_t>(rng.uniform_in(2, 100));
    const auto config =
        cfg("t" + std::to_string(trial), words, bits);
    const auto truth =
        random_fault_mix(config, rng.uniform_in(0, 8), rng);
    const auto test = march::march_cw(bits);

    const auto fast = run_march(config, truth, test, AccessKernel::word_parallel);
    const auto reference = run_march(config, truth, test, AccessKernel::per_cell);
    expect_identical(fast, reference, "trial " + std::to_string(trial));
  }
}

TEST(KernelDifferential, DrfUnderNwrtm) {
  // DRF semantics couple the kernel to the simulated clock and to NWRC
  // write style; the packed path must never touch either.
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const auto config = cfg("drf" + std::to_string(trial), 16, 72);
    std::vector<FaultInstance> truth;
    for (int f = 0; f < 4; ++f) {
      truth.push_back(faults::make_cell_fault(
          rng.bernoulli(0.5) ? FaultKind::drf0 : FaultKind::drf1,
          random_cell(config, rng)));
    }
    const auto test = march::march_cw_nwrtm(config.bits);
    const auto fast = run_march(config, truth, test, AccessKernel::word_parallel);
    const auto reference = run_march(config, truth, test, AccessKernel::per_cell);
    expect_identical(fast, reference, "drf trial " + std::to_string(trial));
    EXPECT_TRUE(fast.detected()) << "NWRTM must expose the injected DRFs";
  }
}

TEST(KernelDifferential, IntraWordCouplingBracketing) {
  // Aggressor and victim inside one word: the word-write pulse must fire
  // the disturb after every write driver released, on both kernels.
  const auto config = cfg("couple", 8, 70);
  for (const auto kind :
       {FaultKind::cf_in_up, FaultKind::cf_id_down1, FaultKind::cf_st_01}) {
    std::vector<FaultInstance> truth{
        faults::make_coupling_fault(kind, {3, 65}, {3, 2}),
        faults::make_coupling_fault(kind, {3, 1}, {3, 68}),
    };
    const auto test = march::march_cw(config.bits);
    const auto fast = run_march(config, truth, test, AccessKernel::word_parallel);
    const auto reference = run_march(config, truth, test, AccessKernel::per_cell);
    expect_identical(fast, reference,
                     std::string(faults::fault_kind_name(kind)));
  }
}

// ---- FastScheme / BaselineScheme: SPC-PSC plumbing ------------------------

bisd::SocUnderTest make_soc(std::uint64_t seed, double rate,
                            AccessKernel kernel, bool idle_mode = true) {
  std::vector<SramConfig> configs;
  for (int i = 0; i < 3; ++i) {
    auto config = cfg("m" + std::to_string(i), 12 + 4 * i, 20 + 25 * i);
    config.has_idle_mode = idle_mode;
    configs.push_back(config);
  }
  faults::InjectionSpec spec;
  spec.cell_defect_rate = rate;
  spec.include_retention = true;
  auto soc = bisd::SocUnderTest::from_injection(configs, spec, seed);
  soc.set_access_kernel(kernel);
  return soc;
}

TEST(KernelDifferential, FastSchemeBatchedSerializationMatchesReference) {
  for (const std::uint64_t seed : {1ull, 9ull, 42ull}) {
    auto fast_soc = make_soc(seed, 0.02, AccessKernel::word_parallel);
    auto ref_soc = make_soc(seed, 0.02, AccessKernel::per_cell);
    bisd::FastScheme fast_scheme;
    bisd::FastScheme ref_scheme;
    const auto fast = fast_scheme.diagnose(fast_soc);
    const auto reference = ref_scheme.diagnose(ref_soc);
    EXPECT_EQ(fast.time.cycles, reference.time.cycles) << "seed " << seed;
    EXPECT_EQ(fast.log.to_csv(), reference.log.to_csv()) << "seed " << seed;
  }
}

TEST(KernelDifferential, FastSchemeWithoutIdleModeMatchesReference) {
  // Memories without an idle mode force the per-clock serialization loop
  // (read-with-data-ignored every shift cycle, Sec. 3.3).
  auto fast_soc = make_soc(5, 0.02, AccessKernel::word_parallel,
                           /*idle_mode=*/false);
  auto ref_soc = make_soc(5, 0.02, AccessKernel::per_cell,
                          /*idle_mode=*/false);
  bisd::FastScheme fast_scheme;
  bisd::FastScheme ref_scheme;
  const auto fast = fast_scheme.diagnose(fast_soc);
  const auto reference = ref_scheme.diagnose(ref_soc);
  EXPECT_EQ(fast.time.cycles, reference.time.cycles);
  EXPECT_EQ(fast.log.to_csv(), reference.log.to_csv());
}

TEST(KernelDifferential, BaselineSchemeMatchesReference) {
  auto fast_soc = make_soc(3, 0.02, AccessKernel::word_parallel);
  auto ref_soc = make_soc(3, 0.02, AccessKernel::per_cell);
  bisd::BaselineScheme fast_scheme;
  bisd::BaselineScheme ref_scheme;
  const auto fast = fast_scheme.diagnose(fast_soc);
  const auto reference = ref_scheme.diagnose(ref_soc);
  EXPECT_EQ(fast.time.cycles, reference.time.cycles);
  EXPECT_EQ(fast.iterations, reference.iterations);
  EXPECT_EQ(fast.log.to_csv(), reference.log.to_csv());
}

// ---- DiagnosisEngine: spec-level kernel selection -------------------------

TEST(KernelDifferential, EngineReportsBitIdenticalAcrossKernels) {
  const auto make_spec = [](AccessKernel kernel) {
    return core::SessionSpec::builder()
        .add_sram(cfg("e0", 24, 33))
        .add_sram(cfg("e1", 16, 80))
        .defect_rate(0.02)
        .seed(11)
        .access_kernel(kernel)
        .build();
  };
  auto fast_spec = make_spec(AccessKernel::word_parallel);
  auto ref_spec = make_spec(AccessKernel::per_cell);
  ASSERT_TRUE(fast_spec.has_value());
  ASSERT_TRUE(ref_spec.has_value());

  const core::DiagnosisEngine engine({.workers = 1});
  const auto fast = engine.run_batch({fast_spec.value()});
  const auto reference = engine.run_batch({ref_spec.value()});
  ASSERT_EQ(fast.run_count(), 1u);
  ASSERT_EQ(reference.run_count(), 1u);
  EXPECT_EQ(fast.runs[0].result.log.to_csv(),
            reference.runs[0].result.log.to_csv());
  EXPECT_EQ(fast.runs[0].result.time.cycles,
            reference.runs[0].result.time.cycles);
  EXPECT_EQ(fast.runs[0].injected_faults, reference.runs[0].injected_faults);
}

// ---- packed arena raw view ------------------------------------------------

TEST(KernelDifferential, RowWordsViewMatchesPerCellReads) {
  // row_words()/words_per_row() expose the packed limb run of one row —
  // the zero-copy view word-level consumers build on.  It must agree with
  // per-cell get() and keep the padding limb bits above bits() zero.
  Rng rng(55);
  for (const std::uint32_t bits : {7u, 64u, 65u, 100u}) {
    sram::CellArray cells(9, bits);
    for (int writes = 0; writes < 200; ++writes) {
      cells.set(random_cell(cfg("view", 9, bits), rng), rng.bernoulli(0.5));
    }
    ASSERT_EQ(cells.words_per_row(), (bits + 63) / 64);
    for (std::uint32_t row = 0; row < cells.rows(); ++row) {
      const std::uint64_t* words = cells.row_words(row);
      for (std::uint32_t bit = 0; bit < bits; ++bit) {
        EXPECT_EQ(((words[bit / 64] >> (bit % 64)) & 1u) != 0,
                  cells.get({row, bit}))
            << "row " << row << " bit " << bit;
      }
      const std::uint32_t used = bits % 64;
      if (used != 0) {
        EXPECT_EQ(words[cells.words_per_row() - 1] >> used, 0u)
            << "padding bits above bits() must stay zero";
      }
    }
  }
}

// ---- batched serial converters vs. per-bit reference ----------------------

TEST(KernelDifferential, PscShiftOutWordMatchesPerBitShifts) {
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const auto width = static_cast<std::size_t>(rng.uniform_in(1, 100));
    BitVector response(width);
    for (std::size_t j = 0; j < width; ++j) {
      response.set(j, rng.bernoulli(0.5));
    }
    serial::ParallelToSerialConverter batched(width);
    serial::ParallelToSerialConverter bitwise(width);
    batched.capture(response);
    bitwise.capture(response);

    std::size_t drained = 0;
    const std::size_t total = width + 7;  // over-drain into the zero fill
    while (drained < total) {
      const auto batch =
          static_cast<std::size_t>(rng.uniform_in(1, 64));
      const auto take = batch < total - drained ? batch : total - drained;
      const std::uint64_t got = batched.shift_out_word(take);
      for (std::size_t t = 0; t < take; ++t) {
        EXPECT_EQ(((got >> t) & 1u) != 0, bitwise.shift_out())
            << "trial " << trial << " clock " << drained + t;
      }
      drained += take;
    }
    EXPECT_EQ(batched.shift_clocks(), bitwise.shift_clocks());
    EXPECT_EQ(batched.remaining(), bitwise.remaining());
  }
}

TEST(KernelDifferential, SpcWordDeliveryMatchesPerBitShifts) {
  Rng rng(123);
  for (int trial = 0; trial < 20; ++trial) {
    const auto wide = static_cast<std::size_t>(rng.uniform_in(2, 100));
    const auto narrow = static_cast<std::size_t>(rng.uniform_in(1, wide));
    BitVector pattern(wide);
    for (std::size_t j = 0; j < wide; ++j) {
      pattern.set(j, rng.bernoulli(0.5));
    }
    serial::SerialToParallelConverter word_path(narrow);
    serial::SerialToParallelConverter bit_path(narrow);
    (void)word_path.deliver(pattern);
    for (std::size_t i = pattern.width(); i-- > 0;) {
      bit_path.shift_in(pattern.get(i));  // MSB first
    }
    EXPECT_EQ(word_path.parallel_out(), bit_path.parallel_out())
        << "trial " << trial;
    EXPECT_EQ(word_path.clocks(), bit_path.clocks()) << "trial " << trial;
  }
}

}  // namespace
}  // namespace fastdiag
