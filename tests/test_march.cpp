// Unit tests for src/march: ops, elements, tests, notation, backgrounds,
// the algorithm library, the runner, and classical coverage guarantees.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "faults/fault_set.h"
#include "march/background.h"
#include "march/coverage.h"
#include "march/library.h"
#include "march/notation.h"
#include "march/runner.h"
#include "march/test.h"
#include "sram/sram.h"
#include "util/rng.h"

namespace fastdiag::march {
namespace {

using faults::FaultInstance;
using faults::FaultKind;
using sram::Sram;
using sram::SramConfig;

SramConfig geometry(std::uint32_t words = 16, std::uint32_t bits = 4) {
  SramConfig config;
  config.name = "g" + std::to_string(words) + "x" + std::to_string(bits);
  config.words = words;
  config.bits = bits;
  return config;
}

Sram faulty(const std::vector<FaultInstance>& instances,
            SramConfig config = geometry()) {
  return Sram(config, std::make_unique<faults::FaultSet>(instances));
}

// --------------------------------------------------------------------- ops

TEST(MarchOp, ToStringForms) {
  EXPECT_EQ(MarchOp::r0().to_string(), "r0");
  EXPECT_EQ(MarchOp::r1().to_string(), "r1");
  EXPECT_EQ(MarchOp::w0().to_string(), "w0");
  EXPECT_EQ(MarchOp::w1().to_string(), "w1");
  EXPECT_EQ(MarchOp::nw0().to_string(), "nw0");
  EXPECT_EQ(MarchOp::nw1().to_string(), "nw1");
  EXPECT_EQ(MarchOp::pause(100'000'000).to_string(), "pause100ms");
  EXPECT_EQ(MarchOp::pause(500).to_string(), "pause500ns");
}

TEST(MarchOp, Predicates) {
  EXPECT_TRUE(MarchOp::r0().is_read());
  EXPECT_FALSE(MarchOp::r0().is_any_write());
  EXPECT_TRUE(MarchOp::w1().is_any_write());
  EXPECT_TRUE(MarchOp::nw0().is_any_write());
  EXPECT_FALSE(MarchOp::pause(1).is_any_write());
}

// ---------------------------------------------------------------- elements

TEST(MarchElement, CountsAndToString) {
  MarchElement e{AddrOrder::up,
                 {MarchOp::r0(), MarchOp::nw1(), MarchOp::w1()}};
  EXPECT_EQ(e.read_count(), 1u);
  EXPECT_EQ(e.write_count(), 2u);
  EXPECT_FALSE(e.has_pause());
  EXPECT_EQ(e.to_string(), "up(r0,nw1,w1)");
}

// ------------------------------------------------------------------- tests

TEST(MarchTest, RejectsPauseInAddressedElement) {
  EXPECT_THROW(
      MarchTest("bad", {MarchPhase{BitVector(4),
                                   {{AddrOrder::up, {MarchOp::pause(1)}}}}}),
      std::invalid_argument);
}

TEST(MarchTest, RejectsReadInOnceElement) {
  EXPECT_THROW(
      MarchTest("bad", {MarchPhase{BitVector(4),
                                   {{AddrOrder::once, {MarchOp::r0()}}}}}),
      std::invalid_argument);
}

TEST(MarchTest, RejectsInconsistentBackgroundWidths) {
  EXPECT_THROW(
      MarchTest("bad",
                {MarchPhase{BitVector(4), {{AddrOrder::up, {MarchOp::r0()}}}},
                 MarchPhase{BitVector(5), {{AddrOrder::up, {MarchOp::r0()}}}}}),
      std::invalid_argument);
}

TEST(MarchTest, OpCountsMatchTextbookComplexities) {
  EXPECT_EQ(mats_plus(8).op_count(100), 500u);       // 5n
  EXPECT_EQ(march_x(8).op_count(100), 600u);         // 6n
  EXPECT_EQ(march_y(8).op_count(100), 800u);         // 8n
  EXPECT_EQ(march_c_minus(8).op_count(100), 1000u);  // 10n
  EXPECT_EQ(march_a(8).op_count(100), 1500u);        // 15n
  EXPECT_EQ(march_b(8).op_count(100), 1700u);        // 17n
}

TEST(MarchTest, MarchCwShape) {
  const auto cw = march_cw(8);  // ceil(log2 8) = 3 stripe backgrounds
  EXPECT_EQ(cw.phases().size(), 4u);
  // 10n solid + 6n per stripe background (3 writes + 3 reads per address).
  EXPECT_EQ(cw.op_count(100), 1000u + 3u * 600u);
  EXPECT_EQ(cw.reads_per_address(), 5u + 3u * 3u);
  EXPECT_EQ(cw.writes_per_address(), 5u + 3u * 3u);
}

TEST(MarchTest, MarchCwNwrtmSameOpCountAsMarchCw) {
  // The NWRTM merge replaces write-backs, it does not add operations.
  EXPECT_EQ(march_cw_nwrtm(8).op_count(64), march_cw(8).op_count(64));
}

TEST(MarchTest, RetentionExtensionAddsPausesOnce) {
  const auto test = with_retention_pause(march_c_minus(4), 1'000'000);
  EXPECT_EQ(test.total_pause_ns(), 2'000'000u);
  // +4n addressed ops and +2 pause ops.
  EXPECT_EQ(test.op_count(10), 100u + 40u + 2u);
}

TEST(MarchTest, LibraryListIsComplete) {
  EXPECT_EQ(all_library_tests(4).size(), 11u);
}

TEST(MarchTest, NewAlgorithmsHaveTextbookComplexities) {
  EXPECT_EQ(march_lr(8).op_count(100), 1400u);  // 14n
  EXPECT_EQ(march_ss(8).op_count(100), 2200u);  // 22n
  // March G: 23n addressed ops + 2 pause ops.
  EXPECT_EQ(march_g(8).op_count(100), 2302u);
  EXPECT_EQ(march_g(8).total_pause_ns(), 200'000'000u);
}

TEST(MarchTest, AblationVariantsDifferAsDocumented) {
  // Paper top-up drops one read per stripe background.
  const auto full = march_cw(8);
  const auto paper = march_cw_paper_topup(8);
  EXPECT_EQ(full.op_count(64) - paper.op_count(64), 3u * 64u);
  // Verify-NWRTM adds one read per address per polarity.
  const auto merged = march_cw_nwrtm(8);
  const auto verify = march_cw_nwrtm_verify(8);
  EXPECT_EQ(verify.op_count(64) - merged.op_count(64), 2u * 64u);
}

TEST(MarchTest, DiagRsMarchShapeMatchesEquationOne) {
  constexpr auto shape = diag_rs_march_shape();
  EXPECT_EQ(shape.base_passes, 17u);
  EXPECT_EQ(shape.m1_passes, 9u);
}

// ------------------------------------------------------------- backgrounds

TEST(Backgrounds, CountIsOnePlusCeilLog2) {
  EXPECT_EQ(standard_backgrounds(1).size(), 1u);
  EXPECT_EQ(standard_backgrounds(2).size(), 2u);
  EXPECT_EQ(standard_backgrounds(8).size(), 4u);
  EXPECT_EQ(standard_backgrounds(100).size(), 8u);  // ceil(log2 100) = 7
}

TEST(Backgrounds, StripePatterns) {
  const auto set = standard_backgrounds(8);
  EXPECT_EQ(set[0].to_string(), "00000000");
  EXPECT_EQ(set[1].to_string(), "10101010");
  EXPECT_EQ(set[2].to_string(), "11001100");
  EXPECT_EQ(set[3].to_string(), "11110000");
}

TEST(Backgrounds, SeparateAllBitPairs) {
  for (const std::size_t width : {2u, 3u, 8u, 33u, 100u}) {
    EXPECT_TRUE(separates_all_bit_pairs(standard_backgrounds(width), width))
        << "width " << width;
  }
}

TEST(Backgrounds, SolidAloneDoesNotSeparate) {
  EXPECT_FALSE(separates_all_bit_pairs({BitVector(4, false)}, 4));
}

// ---------------------------------------------------------------- notation

TEST(Notation, RoundTripsLibraryTests) {
  for (const auto& test : all_library_tests(8)) {
    for (const auto& phase : test.phases()) {
      const auto text = elements_to_string(phase.elements);
      EXPECT_EQ(parse_elements(text), phase.elements) << text;
    }
  }
}

TEST(Notation, RoundTripsPause) {
  const std::string text = "{any(w0); once(pause100ms); any(r0)}";
  const auto elements = parse_elements(text);
  ASSERT_EQ(elements.size(), 3u);
  EXPECT_EQ(elements[1].ops[0].pause_ns, 100'000'000u);
  EXPECT_EQ(elements_to_string(elements), text);
}

TEST(Notation, PauseDurationsUpToU64MaxNanosecondsParse) {
  // 2^64 - 1 ns is the largest representable pause.
  const auto elements =
      parse_elements("{once(pause18446744073709551615ns)}");
  ASSERT_EQ(elements.size(), 1u);
  EXPECT_EQ(elements[0].ops[0].pause_ns, 18'446'744'073'709'551'615ull);
}

TEST(Notation, PauseDurationOverflowIsARejectionNotAWrap) {
  // Past 2^64 the old stoull path threw std::out_of_range (escaping the
  // notation error contract); now it reports through require().
  EXPECT_THROW((void)parse_elements("{once(pause99999999999999999999ns)}"),
               std::invalid_argument);
  // Fits in u64 as a count, but the ms -> ns scale would silently wrap:
  // 5e13 ms * 1e6 = 5e19 ns > 2^64.
  EXPECT_THROW((void)parse_elements("{once(pause50000000000000ms)}"),
               std::invalid_argument);
  // The largest ms value that still fits scales cleanly.
  const auto elements = parse_elements("{once(pause18446744073709ms)}");
  EXPECT_EQ(elements[0].ops[0].pause_ns, 18'446'744'073'709'000'000ull);
}

TEST(Notation, RejectsMalformedInput) {
  EXPECT_THROW((void)parse_elements("any(w0)"), std::invalid_argument);
  EXPECT_THROW((void)parse_elements("{sideways(w0)}"), std::invalid_argument);
  EXPECT_THROW((void)parse_elements("{up(q9)}"), std::invalid_argument);
  EXPECT_THROW((void)parse_elements("{up(r0,w1)} junk"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_elements("{up()}"), std::invalid_argument);
}

TEST(Notation, ErrorPathsCoverEveryGrammarRule) {
  // Unknown address order (empty word and spelled-out variants).
  EXPECT_THROW((void)parse_elements("{(w0)}"), std::invalid_argument);
  EXPECT_THROW((void)parse_elements("{UP(w0)}"), std::invalid_argument);
  // Unknown / truncated op tokens.
  EXPECT_THROW((void)parse_elements("{up(r2)}"), std::invalid_argument);
  EXPECT_THROW((void)parse_elements("{up(w)}"), std::invalid_argument);
  EXPECT_THROW((void)parse_elements("{up(nw)}"), std::invalid_argument);
  // Missing braces / parens / separators.
  EXPECT_THROW((void)parse_elements(""), std::invalid_argument);
  EXPECT_THROW((void)parse_elements("{up(r0,w1)"), std::invalid_argument);
  EXPECT_THROW((void)parse_elements("{up r0,w1}"), std::invalid_argument);
  EXPECT_THROW((void)parse_elements("{up(r0,w1}"), std::invalid_argument);
  EXPECT_THROW((void)parse_elements("{up(r0,)}"), std::invalid_argument);
  EXPECT_THROW((void)parse_elements("{up(r0); }"), std::invalid_argument);
  // Pause grammar: missing duration, junk duration.
  EXPECT_THROW((void)parse_elements("{once(pause)}"), std::invalid_argument);
  EXPECT_THROW((void)parse_elements("{once(pause12x)}"),
               std::invalid_argument);
  // Pause placement: only inside `once`, and `once` holds nothing else.
  EXPECT_THROW((void)parse_elements("{up(r0,pause5ns)}"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_elements("{any(pause5ms)}"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_elements("{once(w0)}"), std::invalid_argument);
  EXPECT_THROW((void)parse_elements("{once(pause5ns,r0)}"),
               std::invalid_argument);
  // The valid forms right next to the rejected ones still parse.
  EXPECT_EQ(parse_elements("{once(pause5ns)}").size(), 1u);
  EXPECT_EQ(parse_elements("{once(pause5ns, pause2ms)}")[0].ops.size(), 2u);
}

TEST(Notation, EmptyListRoundTrips) {
  EXPECT_TRUE(parse_elements("{}").empty());
  EXPECT_EQ(elements_to_string({}), "{}");
}

TEST(Notation, RoundTripsRandomElementLists) {
  // Property: parse_elements(elements_to_string(x)) == x for any valid
  // element list — addressed elements with read/write/NWRC ops in every
  // order, and once-elements holding ns/ms pauses.
  Rng rng(8128);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<MarchElement> elements;
    const auto element_count = 1 + rng.uniform(5);
    for (std::uint64_t e = 0; e < element_count; ++e) {
      MarchElement element;
      if (rng.bernoulli(0.2)) {
        element.order = AddrOrder::once;
        const auto pauses = 1 + rng.uniform(2);
        for (std::uint64_t o = 0; o < pauses; ++o) {
          // ns values below the ms scale, or exact ms multiples — both
          // print back as what they parse from.
          element.ops.push_back(
              rng.bernoulli(0.5)
                  ? MarchOp::pause(1 + rng.uniform(999'999))
                  : MarchOp::pause((1 + rng.uniform(500)) * 1'000'000));
        }
      } else {
        static const AddrOrder orders[] = {AddrOrder::up, AddrOrder::down,
                                           AddrOrder::any};
        element.order = orders[rng.uniform(3)];
        const auto ops = 1 + rng.uniform(5);
        for (std::uint64_t o = 0; o < ops; ++o) {
          static const MarchOp choices[] = {MarchOp::r0(),  MarchOp::r1(),
                                            MarchOp::w0(),  MarchOp::w1(),
                                            MarchOp::nw0(), MarchOp::nw1()};
          element.ops.push_back(choices[rng.uniform(std::size(choices))]);
        }
      }
      elements.push_back(std::move(element));
    }
    const auto text = elements_to_string(elements);
    EXPECT_EQ(parse_elements(text), elements) << "trial " << trial << ": "
                                              << text;
  }
}

// ------------------------------------------------------------------ runner

TEST(Runner, FaultFreeMemoryRunsClean) {
  for (const auto& test : all_library_tests(4)) {
    Sram memory(geometry());
    const auto result = MarchRunner().run(memory, test);
    EXPECT_FALSE(result.detected()) << test.name();
    EXPECT_EQ(result.ops, test.op_count(16)) << test.name();
  }
}

TEST(Runner, ElapsedTimeMatchesOpsTimesClock) {
  Sram memory(geometry());
  const auto test = march_c_minus(4);
  const auto result = MarchRunner(sram::ClockDomain{10}).run(memory, test);
  EXPECT_EQ(result.elapsed_ns, result.ops * 10u);
}

TEST(Runner, DetectsAndLocatesStuckAt) {
  auto memory = faulty({faults::make_cell_fault(FaultKind::sa0, {5, 2})});
  const auto result = MarchRunner().run(memory, march_c_minus(4));
  ASSERT_TRUE(result.detected());
  const auto suspects = result.suspect_cells();
  EXPECT_EQ(suspects.size(), 1u);
  EXPECT_EQ(*suspects.begin(), (sram::CellCoord{5, 2}));
}

TEST(Runner, TestNarrowerThanMemoryRejected) {
  Sram memory(geometry(16, 8));
  EXPECT_THROW((void)MarchRunner().run(memory, march_c_minus(4)),
               std::invalid_argument);
}

TEST(Runner, WiderTestTruncatesLikeMsbFirstSpc) {
  // A width-8 test driving a width-4 memory uses the low 4 background bits
  // (DP[c'-1:0], Sec. 3.2) — the run must stay clean on a good memory.
  Sram memory(geometry(8, 4));
  const auto result = MarchRunner().run(memory, march_cw(8));
  EXPECT_FALSE(result.detected());
}

TEST(Runner, PauseAdvancesSimulatedTime) {
  Sram memory(geometry());
  const auto test = with_retention_pause(march_c_minus(4), 7'000'000);
  (void)MarchRunner().run(memory, test);
  EXPECT_GT(memory.now_ns(), 14'000'000u);
}

TEST(Runner, WrapEmulationStaysCleanAndCountsGlobalSteps) {
  // global_words emulates the shared controller sweeping a larger SoC
  // (Sec. 3.1): a good memory revisited by the wrap must still run clean —
  // revisit reads expect the written-back value, not the nominal pattern.
  Sram memory(geometry(6, 4));
  const auto test = march_c_minus(4);
  const auto result = MarchRunner().run(memory, test, /*global_words=*/16);
  EXPECT_FALSE(result.detected());
  EXPECT_EQ(result.ops, test.op_count(16));
}

TEST(Runner, WrapEmulationAttributesVisits) {
  // An SA0 cell fails every expected-1 read on every wrap visit; the
  // mismatch records must carry op and visit attribution.
  auto memory = faulty({faults::make_cell_fault(FaultKind::sa0, {1, 2})});
  const auto result = MarchRunner().run(memory, march_c_minus(4),
                                        /*global_words=*/32);
  ASSERT_TRUE(result.detected());
  const auto suspects = result.suspect_cells();
  ASSERT_EQ(suspects.size(), 1u);
  EXPECT_EQ(suspects[0], (sram::CellCoord{1, 2}));
  bool saw_revisit = false;
  for (const auto& mismatch : result.mismatches) {
    EXPECT_EQ(mismatch.addr, 1u);
    EXPECT_LT(mismatch.visit, 2u);  // 32 steps over 16 words = 2 visits
    saw_revisit = saw_revisit || mismatch.visit == 1;
  }
  EXPECT_TRUE(saw_revisit);
}

TEST(Runner, GlobalWordsBelowCapacityRejected) {
  Sram memory(geometry(16, 4));
  EXPECT_THROW((void)MarchRunner().run(memory, march_c_minus(4), 8),
               std::invalid_argument);
}

// ----------------------------------------------- classical coverage claims

CoverageRow coverage_of(const MarchTest& test, FaultKind kind,
                        CouplingScope scope = CouplingScope::any,
                        std::uint32_t words = 16, std::uint32_t bits = 4) {
  Rng rng(2024);
  const auto config = geometry(words, bits);
  const auto population = make_population(config, kind, scope, 48, rng);
  return CoverageEvaluator(config).evaluate(test, population);
}

TEST(Coverage, MarchCMinusDetectsAllStuckAt) {
  EXPECT_DOUBLE_EQ(coverage_of(march_c_minus(4), FaultKind::sa0)
                       .detection_rate(), 1.0);
  EXPECT_DOUBLE_EQ(coverage_of(march_c_minus(4), FaultKind::sa1)
                       .detection_rate(), 1.0);
}

TEST(Coverage, MarchCMinusDetectsAllTransition) {
  EXPECT_DOUBLE_EQ(coverage_of(march_c_minus(4), FaultKind::tf_up)
                       .detection_rate(), 1.0);
  EXPECT_DOUBLE_EQ(coverage_of(march_c_minus(4), FaultKind::tf_down)
                       .detection_rate(), 1.0);
}

TEST(Coverage, MarchCMinusDetectsAllAddressFaults) {
  for (const auto kind : {FaultKind::af_no_access, FaultKind::af_wrong_row,
                          FaultKind::af_extra_row}) {
    EXPECT_DOUBLE_EQ(coverage_of(march_c_minus(4), kind).detection_rate(),
                     1.0)
        << faults::fault_kind_name(kind);
  }
}

TEST(Coverage, MarchCMinusDetectsInterWordCoupling) {
  for (const auto kind :
       {FaultKind::cf_in_up, FaultKind::cf_in_down, FaultKind::cf_id_up0,
        FaultKind::cf_id_up1, FaultKind::cf_id_down0, FaultKind::cf_id_down1,
        FaultKind::cf_st_00, FaultKind::cf_st_01, FaultKind::cf_st_10,
        FaultKind::cf_st_11}) {
    EXPECT_DOUBLE_EQ(
        coverage_of(march_c_minus(4), kind, CouplingScope::inter_word)
            .detection_rate(),
        1.0)
        << faults::fault_kind_name(kind);
  }
}

TEST(Coverage, MarchCMinusMissesSomeIntraWordCoupling) {
  // CFid<up;1>: the aggressor's rise always co-writes the victim to the
  // forced value under the solid background — invisible without stripes.
  const auto row = coverage_of(march_c_minus(4), FaultKind::cf_id_up1,
                               CouplingScope::intra_word);
  EXPECT_LT(row.detection_rate(), 0.5);
}

TEST(Coverage, MarchCwDetectsIntraWordCoupling) {
  for (const auto kind :
       {FaultKind::cf_in_up, FaultKind::cf_in_down, FaultKind::cf_id_up0,
        FaultKind::cf_id_up1, FaultKind::cf_id_down0, FaultKind::cf_id_down1,
        FaultKind::cf_st_00, FaultKind::cf_st_01, FaultKind::cf_st_10,
        FaultKind::cf_st_11}) {
    EXPECT_DOUBLE_EQ(
        coverage_of(march_cw(4), kind, CouplingScope::intra_word)
            .detection_rate(),
        1.0)
        << faults::fault_kind_name(kind);
  }
}

TEST(Coverage, SofCaughtByReadAfterWriteTests) {
  EXPECT_DOUBLE_EQ(coverage_of(march_y(4), FaultKind::sof).detection_rate(),
                   1.0);
  EXPECT_DOUBLE_EQ(coverage_of(march_b(4), FaultKind::sof).detection_rate(),
                   1.0);
}

TEST(Coverage, SofMostlyEscapesMarchCMinus) {
  // Without a read-after-write in the same element, the sense-amp latch
  // happens to match the expected value except at the address-0 boundary.
  const auto row = coverage_of(march_c_minus(4), FaultKind::sof);
  EXPECT_LT(row.detection_rate(), 0.3);
}

TEST(Coverage, DrfInvisibleToPlainMarch) {
  // The test finishes long before the retention threshold: zero coverage —
  // the blind spot of [7,8] the paper fixes.
  EXPECT_DOUBLE_EQ(coverage_of(march_cw(4), FaultKind::drf0).detection_rate(),
                   0.0);
  EXPECT_DOUBLE_EQ(coverage_of(march_cw(4), FaultKind::drf1).detection_rate(),
                   0.0);
}

TEST(Coverage, DrfFullyCaughtByNwrtm) {
  EXPECT_DOUBLE_EQ(
      coverage_of(march_cw_nwrtm(4), FaultKind::drf0).detection_rate(), 1.0);
  EXPECT_DOUBLE_EQ(
      coverage_of(march_cw_nwrtm(4), FaultKind::drf1).detection_rate(), 1.0);
}

TEST(Coverage, DrfCaughtByRetentionPause) {
  const auto test = with_retention_pause(march_c_minus(4));
  EXPECT_DOUBLE_EQ(coverage_of(test, FaultKind::drf0).detection_rate(), 1.0);
  EXPECT_DOUBLE_EQ(coverage_of(test, FaultKind::drf1).detection_rate(), 1.0);
}

TEST(Coverage, MarchSsDetectsAllSimpleStaticCellFaults) {
  for (const auto kind : {FaultKind::sa0, FaultKind::sa1, FaultKind::tf_up,
                          FaultKind::tf_down}) {
    EXPECT_DOUBLE_EQ(coverage_of(march_ss(4), kind).detection_rate(), 1.0)
        << faults::fault_kind_name(kind);
  }
}

TEST(Coverage, MarchGDetectsSofAndDrf) {
  // Read-after-write inside the long element catches stuck-open cells;
  // the two delay elements catch retention faults.
  EXPECT_DOUBLE_EQ(coverage_of(march_g(4), FaultKind::sof).detection_rate(),
                   1.0);
  EXPECT_DOUBLE_EQ(coverage_of(march_g(4), FaultKind::drf0).detection_rate(),
                   1.0);
  EXPECT_DOUBLE_EQ(coverage_of(march_g(4), FaultKind::drf1).detection_rate(),
                   1.0);
}

TEST(Coverage, MarchLrDetectsClassicalFaults) {
  for (const auto kind : {FaultKind::sa0, FaultKind::sa1, FaultKind::tf_up,
                          FaultKind::tf_down}) {
    EXPECT_DOUBLE_EQ(coverage_of(march_lr(4), kind).detection_rate(), 1.0)
        << faults::fault_kind_name(kind);
  }
  EXPECT_DOUBLE_EQ(
      coverage_of(march_lr(4), FaultKind::cf_in_up, CouplingScope::inter_word)
          .detection_rate(),
      1.0);
}

TEST(Coverage, PaperTopUpMissesWhatTheVerifyReadCatches) {
  // The ablation pair behind DESIGN.md's March CW decision: the paper's
  // 2-read top-up leaves its last write unverified.
  const auto full = coverage_of(march_cw(4), FaultKind::cf_id_down0,
                                CouplingScope::intra_word);
  const auto paper = coverage_of(march_cw_paper_topup(4),
                                 FaultKind::cf_id_down0,
                                 CouplingScope::intra_word);
  EXPECT_DOUBLE_EQ(full.detection_rate(), 1.0);
  EXPECT_LT(paper.detection_rate(), 1.0);
}

TEST(Coverage, NwrtmVerifyVariantAlsoCatchesAllDrfs) {
  EXPECT_DOUBLE_EQ(
      coverage_of(march_cw_nwrtm_verify(4), FaultKind::drf0).detection_rate(),
      1.0);
  EXPECT_DOUBLE_EQ(
      coverage_of(march_cw_nwrtm_verify(4), FaultKind::drf1).detection_rate(),
      1.0);
}

TEST(Coverage, NwrtmDoesNotChangeNonDrfCoverage) {
  // Sec. 4.1: the proposed scheme's coverage equals the baseline's on
  // logical faults and adds the DRFs.
  for (const auto kind : faults::all_fault_kinds()) {
    if (faults::is_retention_fault(kind)) {
      continue;
    }
    const auto scope = faults::needs_aggressor(kind)
                           ? CouplingScope::intra_word
                           : CouplingScope::any;
    const auto base = coverage_of(march_cw(4), kind, scope);
    const auto merged = coverage_of(march_cw_nwrtm(4), kind, scope);
    EXPECT_EQ(base.detected, merged.detected)
        << faults::fault_kind_name(kind);
  }
}

// ------------------------------------------- parameterized invariant sweep

using SweepParam = std::tuple<std::size_t, FaultKind>;

class CoverageInvariants : public ::testing::TestWithParam<SweepParam> {};

TEST_P(CoverageInvariants, LocatedNeverExceedsDetected) {
  const auto algo_index = std::get<0>(GetParam());
  const auto kind = std::get<1>(GetParam());
  const auto tests = all_library_tests(4);
  const auto& test = tests[algo_index];
  const auto row = coverage_of(test, kind, CouplingScope::any, 8, 4);
  EXPECT_LE(row.located, row.detected);
  EXPECT_LE(row.detected, row.injected);
  EXPECT_GT(row.injected, 0u);
}

std::string sweep_param_name(const ::testing::TestParamInfo<SweepParam>& p) {
  std::string name = "algo" + std::to_string(std::get<0>(p.param)) + "_" +
                     std::string(faults::fault_kind_name(std::get<1>(p.param)));
  for (auto& c : name) {
    if (std::isalnum(static_cast<unsigned char>(c)) == 0) {
      c = '_';
    }
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithmsAllKinds, CoverageInvariants,
    ::testing::Combine(::testing::Range<std::size_t>(0, 11),
                       ::testing::ValuesIn(faults::all_fault_kinds())),
    sweep_param_name);

// ------------------------------------------------------------- populations

TEST(Population, CellKindsEnumerateExhaustivelyWhenSmall) {
  Rng rng(1);
  const auto population = make_population(geometry(4, 3), FaultKind::sa0,
                                          CouplingScope::any, 100, rng);
  EXPECT_EQ(population.instances.size(), 12u);
}

TEST(Population, SamplingCapsInstances) {
  Rng rng(1);
  const auto population = make_population(geometry(16, 8), FaultKind::sa0,
                                          CouplingScope::any, 10, rng);
  EXPECT_EQ(population.instances.size(), 10u);
}

TEST(Population, IntraWordPairsShareRow) {
  Rng rng(3);
  const auto population = make_population(
      geometry(), FaultKind::cf_in_up, CouplingScope::intra_word, 32, rng);
  for (const auto& f : population.instances) {
    EXPECT_EQ(f.victim.row, f.aggressor.row);
    EXPECT_NE(f.victim.bit, f.aggressor.bit);
  }
}

TEST(Population, InterWordPairsDiffer) {
  Rng rng(3);
  const auto population = make_population(
      geometry(), FaultKind::cf_in_up, CouplingScope::inter_word, 32, rng);
  for (const auto& f : population.instances) {
    EXPECT_NE(f.victim.row, f.aggressor.row);
  }
}

TEST(Runner, RetentionPauseGroupRunsMatchPerMemoryRuns) {
  // Differential check of the satellite fix path: a march test whose
  // `once` elements carry retention pauses must advance every lane's clock
  // identically whether the fleet goes through run_group() or one run()
  // per memory — DRF decay is evaluated against that clock, so a skewed
  // pause would show up as divergent mismatch streams.
  const auto test = with_retention_pause(march_c_minus(4), 100'000'000);
  const auto build_fleet = [] {
    std::vector<std::unique_ptr<Sram>> fleet;
    for (std::size_t i = 0; i < 6; ++i) {
      auto config = geometry();
      config.name = "lane" + std::to_string(i);
      std::vector<FaultInstance> truth;
      if (i == 2) {
        truth.push_back(faults::make_cell_fault(FaultKind::drf0, {3, 1}));
      }
      if (i == 4) {
        truth.push_back(faults::make_cell_fault(FaultKind::drf1, {5, 2}));
      }
      fleet.push_back(std::make_unique<Sram>(
          config, std::make_unique<faults::FaultSet>(truth)));
    }
    return fleet;
  };

  auto grouped = build_fleet();
  auto reference = build_fleet();
  std::vector<Sram*> group;
  for (const auto& lane : grouped) {
    group.push_back(lane.get());
  }

  const MarchRunner runner;
  const auto results = runner.run_group(group, test);
  ASSERT_EQ(results.size(), grouped.size());
  for (std::size_t i = 0; i < grouped.size(); ++i) {
    const auto expected = runner.run(*reference[i], test);
    EXPECT_EQ(results[i].ops, expected.ops) << "lane " << i;
    EXPECT_EQ(results[i].elapsed_ns, expected.elapsed_ns) << "lane " << i;
    ASSERT_EQ(results[i].mismatches.size(), expected.mismatches.size())
        << "lane " << i;
    for (std::size_t m = 0; m < results[i].mismatches.size(); ++m) {
      EXPECT_TRUE(results[i].mismatches[m] == expected.mismatches[m])
          << "lane " << i << " mismatch " << m;
    }
    EXPECT_EQ(grouped[i]->now_ns(), reference[i]->now_ns()) << "lane " << i;
  }
  // The retention pause is what exposes the DRF lanes at all.
  EXPECT_TRUE(results[2].detected());
  EXPECT_TRUE(results[4].detected());
  EXPECT_FALSE(results[0].detected());
}

TEST(Population, EvaluateAllCoversEveryKind) {
  const CoverageEvaluator evaluator(geometry(8, 4));
  const auto rows = evaluator.evaluate_all(march_cw(4), 8, 7);
  // 10 coupling kinds get two rows each; the other 10 kinds one row.
  EXPECT_EQ(rows.size(), 30u);
}

}  // namespace
}  // namespace fastdiag::march
