// Unit tests for src/nwrtm: the global NWRTM control, the two DRF probes,
// and the agreement between the electrical 6T model and the logical DRF
// fault model.
#include <gtest/gtest.h>

#include <memory>

#include "faults/fault_set.h"
#include "nwrtm/nwrtm.h"
#include "sram/electrical.h"
#include "sram/sram.h"
#include "util/rng.h"

namespace fastdiag::nwrtm {
namespace {

using faults::FaultInstance;
using faults::FaultKind;
using sram::CellCoord;
using sram::Sram;
using sram::SramConfig;

SramConfig config_8x4() {
  SramConfig config;
  config.name = "n8x4";
  config.words = 8;
  config.bits = 4;
  config.retention_ns = 1'000'000;  // 1 ms
  return config;
}

Sram faulty(const std::vector<FaultInstance>& instances,
            SramConfig config = config_8x4()) {
  return Sram(config, std::make_unique<faults::FaultSet>(instances));
}

// ------------------------------------------------------------- controller

TEST(NwrtmController, TogglesAreCounted) {
  NwrtmController controller(/*toggle_cost_cycles=*/4);
  EXPECT_FALSE(controller.asserted());
  controller.assert_mode();
  controller.assert_mode();  // redundant assert: no extra toggle
  EXPECT_TRUE(controller.asserted());
  controller.deassert_mode();
  EXPECT_EQ(controller.toggles(), 2u);
  EXPECT_EQ(controller.toggle_cycles(), 8u);
}

TEST(NwrtmController, WriteRoutesThroughMode) {
  auto memory = faulty({faults::make_cell_fault(FaultKind::drf1, {1, 0})});
  NwrtmController controller;

  // Mode off: a normal write flips even the DRF cell.
  controller.write(memory, 1, BitVector::from_string("0001"));
  EXPECT_EQ(memory.read(1).to_string(), "0001");

  // Reset to 0, then write through the asserted mode: the NWRC fails.
  controller.write(memory, 1, BitVector::from_string("0000"));
  controller.assert_mode();
  controller.write(memory, 1, BitVector::from_string("0001"));
  EXPECT_EQ(memory.read(1).to_string(), "0000");
}

// ------------------------------------------------------------------ probes

TEST(NwrtmProbe, FindsExactlyTheDrfCellsWithoutWaiting) {
  auto memory = faulty({
      faults::make_cell_fault(FaultKind::drf1, {2, 1}),
      faults::make_cell_fault(FaultKind::drf0, {5, 3}),
  });
  const auto result = nwrtm_drf_probe(memory);
  EXPECT_EQ(result.pause_ns, 0u);
  EXPECT_EQ(result.suspects,
            (std::set<CellCoord>{{2, 1}, {5, 3}}));
}

TEST(NwrtmProbe, CleanMemoryYieldsNoSuspects) {
  Sram memory(config_8x4());
  const auto result = nwrtm_drf_probe(memory);
  EXPECT_TRUE(result.suspects.empty());
  // 3 ops per address per polarity.
  EXPECT_EQ(result.ops, 2u * 3u * 8u);
}

TEST(DelayProbe, FindsDrfCellsAtTheCostOfTwoPauses) {
  auto memory = faulty({
      faults::make_cell_fault(FaultKind::drf1, {2, 1}),
      faults::make_cell_fault(FaultKind::drf0, {5, 3}),
  });
  const auto result = delay_drf_probe(memory, 2'000'000);
  EXPECT_EQ(result.pause_ns, 4'000'000u);  // two pauses
  EXPECT_EQ(result.suspects,
            (std::set<CellCoord>{{2, 1}, {5, 3}}));
}

TEST(DelayProbe, PauseShorterThanRetentionMissesTheFault) {
  auto memory = faulty({faults::make_cell_fault(FaultKind::drf1, {2, 1})});
  const auto result = delay_drf_probe(memory, 500'000);  // < retention 1 ms
  EXPECT_TRUE(result.suspects.empty());
}

TEST(Probes, AgreeOnRandomDrfPopulations) {
  // Property: for pure-DRF fault sets the two probes report identical
  // suspect sets — NWRTM delivers the delay-based result with zero waiting.
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<FaultInstance> instances;
    const auto config = config_8x4();
    const auto count = 1 + rng.uniform(5);
    const auto sites =
        rng.sample_without_replacement(config.cell_count(), count);
    for (const auto site : sites) {
      const CellCoord cell{static_cast<std::uint32_t>(site / config.bits),
                           static_cast<std::uint32_t>(site % config.bits)};
      instances.push_back(faults::make_cell_fault(
          rng.bernoulli(0.5) ? FaultKind::drf0 : FaultKind::drf1, cell));
    }
    auto mem_a = faulty(instances);
    auto mem_b = faulty(instances);
    const auto nwrtm_result = nwrtm_drf_probe(mem_a);
    const auto delay_result = delay_drf_probe(mem_b, 2'000'000);
    EXPECT_EQ(nwrtm_result.suspects, delay_result.suspects)
        << "trial " << trial;
    EXPECT_EQ(nwrtm_result.pause_ns, 0u);
    EXPECT_GT(delay_result.pause_ns, 0u);
  }
}

// --------------------------------- electrical vs. logical model agreement

/// Drives the switch-level cell and the logical DRF model with the same
/// operation sequence and checks they never disagree on a read.
TEST(ModelAgreement, ElectricalAndLogicalDrf1Match) {
  constexpr std::uint64_t kRetention = 1'000'000;
  Rng rng(99);
  for (int trial = 0; trial < 30; ++trial) {
    sram::SixTCell cell;
    cell.break_pullup_a();  // loses stored '1' -> DRF1

    SramConfig config;
    config.name = "m1x1";
    config.words = 1;
    config.bits = 1;
    config.retention_ns = kRetention;
    auto memory = faulty(
        {faults::make_cell_fault(FaultKind::drf1, {0, 0})}, config);

    std::uint64_t now = 0;
    for (int step = 0; step < 40; ++step) {
      const auto action = rng.uniform(4);
      switch (action) {
        case 0: {  // normal write of a random value
          const bool v = rng.bernoulli(0.5);
          (void)cell.write_cycle(v, sram::bitline_conditioning(v, false), now,
                                 kRetention);
          memory.write(0, BitVector::from_value(1, v ? 1 : 0));
          break;
        }
        case 1: {  // NWRC write of a random value
          const bool v = rng.bernoulli(0.5);
          (void)cell.write_cycle(v, sram::bitline_conditioning(v, true), now,
                                 kRetention);
          memory.nwrc_write(0, BitVector::from_value(1, v ? 1 : 0));
          break;
        }
        case 2: {  // let time pass (sometimes beyond retention)
          const std::uint64_t dt = rng.uniform(2 * kRetention);
          now += dt;
          memory.advance_time_ns(dt);
          break;
        }
        default: {  // compare reads
          const bool electrical = cell.read_cycle(now, kRetention);
          const bool logical = memory.read(0).get(0);
          ASSERT_EQ(electrical, logical)
              << "trial " << trial << " step " << step << " now " << now;
          break;
        }
      }
    }
  }
}

TEST(ModelAgreement, ElectricalAndLogicalDrf0Match) {
  constexpr std::uint64_t kRetention = 1'000'000;
  sram::SixTCell cell;
  cell.break_pullup_b();

  SramConfig config;
  config.name = "m1x1";
  config.words = 1;
  config.bits = 1;
  config.retention_ns = kRetention;
  auto memory =
      faulty({faults::make_cell_fault(FaultKind::drf0, {0, 0})}, config);

  // Deterministic scripted sequence covering both polarities and decay.
  std::uint64_t now = 0;
  const auto step = [&](bool v, bool nwrtm, std::uint64_t dt) {
    now += dt;
    memory.advance_time_ns(dt);
    (void)cell.write_cycle(v, sram::bitline_conditioning(v, nwrtm), now,
                           kRetention);
    if (nwrtm) {
      memory.nwrc_write(0, BitVector::from_value(1, v ? 1 : 0));
    } else {
      memory.write(0, BitVector::from_value(1, v ? 1 : 0));
    }
    EXPECT_EQ(cell.read_cycle(now, kRetention), memory.read(0).get(0));
  };

  step(true, false, 10);           // normal w1
  step(false, true, 10);           // NWRC w0 fails on DRF0
  step(false, false, 10);          // normal w0 succeeds
  now += 2 * kRetention;           // decay window
  memory.advance_time_ns(2 * kRetention);
  EXPECT_EQ(cell.read_cycle(now, kRetention), memory.read(0).get(0));
  EXPECT_TRUE(memory.read(0).get(0));  // the stored 0 leaked to 1
}

}  // namespace
}  // namespace fastdiag::nwrtm
