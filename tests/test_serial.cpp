// Unit tests for src/serial: shift register, SPC (Fig. 4), PSC (Fig. 5),
// and the serialized interfaces of [7,8]/[9,10] with their masking
// behaviour (Fig. 2).
#include <gtest/gtest.h>

#include <memory>

#include "faults/fault_set.h"
#include "serial/psc.h"
#include "serial/serial_interface.h"
#include "serial/shift_register.h"
#include "serial/spc.h"
#include "sram/sram.h"

namespace fastdiag::serial {
namespace {

using faults::FaultKind;
using sram::Sram;
using sram::SramConfig;

SramConfig config_nx(std::uint32_t words, std::uint32_t bits) {
  SramConfig config;
  config.name = "s" + std::to_string(words) + "x" + std::to_string(bits);
  config.words = words;
  config.bits = bits;
  return config;
}

// ------------------------------------------------------------ ShiftRegister

TEST(ShiftRegister, ShiftsThrough) {
  ShiftRegister sr(3);
  EXPECT_FALSE(sr.shift_in(true));
  EXPECT_FALSE(sr.shift_in(false));
  EXPECT_FALSE(sr.shift_in(true));
  // Stage contents now (stage0..2) = 1,0,1; next shifts pop stage 2.
  EXPECT_TRUE(sr.shift_in(false));
  EXPECT_FALSE(sr.shift_in(false));
  EXPECT_TRUE(sr.shift_in(false));
}

TEST(ShiftRegister, LoadAndStages) {
  ShiftRegister sr(4);
  sr.load(BitVector::from_string("1010"));
  EXPECT_EQ(sr.stages().to_string(), "1010");
  sr.reset();
  EXPECT_EQ(sr.stages().popcount(), 0u);
}

TEST(ShiftRegister, ZeroWidthRejected) {
  EXPECT_THROW(ShiftRegister sr(0), std::invalid_argument);
}

// -------------------------------------------------------------------- SPC

TEST(Spc, FullWidthDeliveryMsbFirst) {
  SerialToParallelConverter spc(4);
  const auto pattern = BitVector::from_string("1011");
  EXPECT_EQ(spc.deliver(pattern), 4u);
  EXPECT_EQ(spc.parallel_out(), pattern);
  EXPECT_EQ(spc.clocks(), 4u);
}

TEST(Spc, NarrowSpcKeepsLowBits) {
  // Fig. 4: a c'=3 SPC fed the widest pattern DP[3:0] MSB-first must end
  // holding DP[2:0]; the high bit passes through and falls off.
  SerialToParallelConverter spc(3);
  (void)spc.deliver(BitVector::from_string("1011"));
  EXPECT_EQ(spc.parallel_out().to_string(), "011");
}

TEST(Spc, LsbFirstDeliveryWouldLoseLowBits) {
  // Sec. 3.2's counter-example: with LSB-first delivery the narrow SPC ends
  // holding DP[c-1 : c-c'] instead of DP[c'-1:0] — the design defect the
  // MSB-first choice avoids.
  SerialToParallelConverter spc(3);
  const auto pattern = BitVector::from_string("1011");
  for (std::size_t i = 0; i < pattern.width(); ++i) {
    spc.shift_in(pattern.get(i));  // LSB first
  }
  // Stage j ends with pattern bit (width-1) - ... : the *high* bits.
  EXPECT_EQ(spc.parallel_out().to_string(), "101");  // DP[3:1], not DP[2:0]
}

TEST(Spc, DeliverRejectsNarrowPattern) {
  SerialToParallelConverter spc(4);
  EXPECT_THROW((void)spc.deliver(BitVector::from_string("101")),
               std::invalid_argument);
}

TEST(Spc, RepeatedDeliveriesOverwrite) {
  SerialToParallelConverter spc(4);
  (void)spc.deliver(BitVector::from_string("1111"));
  (void)spc.deliver(BitVector::from_string("0010"));
  EXPECT_EQ(spc.parallel_out().to_string(), "0010");
  EXPECT_EQ(spc.clocks(), 8u);
}

// -------------------------------------------------------------------- PSC

TEST(Psc, CaptureThenShiftLsbFirst) {
  ParallelToSerialConverter psc(4);
  psc.capture(BitVector::from_string("1010"));
  EXPECT_EQ(psc.remaining(), 4u);
  EXPECT_FALSE(psc.shift_out());  // bit 0
  EXPECT_TRUE(psc.shift_out());   // bit 1
  EXPECT_FALSE(psc.shift_out());  // bit 2
  EXPECT_TRUE(psc.shift_out());   // bit 3
  EXPECT_EQ(psc.remaining(), 0u);
}

TEST(Psc, DrainedChainClocksZeros) {
  ParallelToSerialConverter psc(2);
  psc.capture(BitVector::from_string("11"));
  (void)psc.shift_out();
  (void)psc.shift_out();
  EXPECT_FALSE(psc.shift_out());
  EXPECT_EQ(psc.shift_clocks(), 3u);
}

TEST(Psc, RecaptureRestartsStream) {
  ParallelToSerialConverter psc(2);
  psc.capture(BitVector::from_string("01"));
  (void)psc.shift_out();
  psc.capture(BitVector::from_string("10"));
  EXPECT_FALSE(psc.shift_out());
  EXPECT_TRUE(psc.shift_out());
}

TEST(Psc, WidthMismatchRejected) {
  ParallelToSerialConverter psc(4);
  EXPECT_THROW(psc.capture(BitVector(3)), std::invalid_argument);
}

// -------------------------------------------------- serialized interfaces

TEST(BidiSerial, FaultFreePassObservesOldContentAndWritesPattern) {
  Sram memory(config_nx(4, 4));
  memory.write(2, BitVector::from_string("1001"));
  BidiSerialInterface interface(memory);
  const auto result =
      interface.pass(ShiftDirection::right, BitVector::from_string("1111"));
  ASSERT_EQ(result.observed.size(), 4u);
  EXPECT_EQ(result.observed[2].to_string(), "1001");  // old content streamed
  EXPECT_EQ(memory.read(2).to_string(), "1111");      // new background landed
  EXPECT_EQ(result.cycles, 16u);                      // n * c
}

TEST(BidiSerial, LeftPassEquivalentOnFaultFreeMemory) {
  Sram memory(config_nx(4, 4));
  memory.write(1, BitVector::from_string("0110"));
  BidiSerialInterface interface(memory);
  const auto result =
      interface.pass(ShiftDirection::left, BitVector::from_string("0000"));
  EXPECT_EQ(result.observed[1].to_string(), "0110");
  EXPECT_EQ(memory.read(1).to_string(), "0000");
}

TEST(BidiSerial, PatternWidthMismatchRejected) {
  Sram memory(config_nx(4, 4));
  BidiSerialInterface interface(memory);
  EXPECT_THROW((void)interface.pass(ShiftDirection::right, BitVector(5)),
               std::invalid_argument);
}

TEST(BidiSerial, TotalCyclesAccumulate) {
  Sram memory(config_nx(3, 5));
  BidiSerialInterface interface(memory);
  (void)interface.pass(ShiftDirection::right, BitVector(5, true));
  (void)interface.pass(ShiftDirection::left, BitVector(5, false));
  EXPECT_EQ(interface.total_cycles(), 30u);
}

/// Builds a memory whose word 0 holds all ones with SA0 faults at @p bits.
Sram ones_with_sa0(std::uint32_t c, std::vector<std::uint32_t> bits) {
  std::vector<faults::FaultInstance> instances;
  for (const auto bit : bits) {
    instances.push_back(faults::make_cell_fault(FaultKind::sa0, {0, bit}));
  }
  Sram memory(config_nx(1, c), std::make_unique<faults::FaultSet>(instances));
  memory.write(0, BitVector(c, true));
  return memory;
}

TEST(BidiSerial, RightPassMasksFaultsBelowTheHighestOne) {
  // SA0 at bits 2 and 5 of an 8-bit word full of ones.  Shifting right, the
  // observed stream is clean above bit 5, corrupted at and below it: the
  // fault at bit 2 is indistinguishable (masked).
  auto memory = ones_with_sa0(8, {2, 5});
  BidiSerialInterface interface(memory);
  const auto result =
      interface.pass(ShiftDirection::right, BitVector(8, true));
  const auto& seen = result.observed[0];
  for (std::uint32_t j = 6; j < 8; ++j) {
    EXPECT_TRUE(seen.get(j)) << "bit " << j << " should be clean";
  }
  for (std::uint32_t j = 0; j <= 5; ++j) {
    EXPECT_FALSE(seen.get(j)) << "bit " << j << " should be corrupted";
  }
}

TEST(BidiSerial, LeftPassExposesTheLowestFault) {
  auto memory = ones_with_sa0(8, {2, 5});
  BidiSerialInterface interface(memory);
  const auto result = interface.pass(ShiftDirection::left, BitVector(8, true));
  const auto& seen = result.observed[0];
  for (std::uint32_t j = 0; j < 2; ++j) {
    EXPECT_TRUE(seen.get(j)) << "bit " << j << " should be clean";
  }
  for (std::uint32_t j = 2; j < 8; ++j) {
    EXPECT_FALSE(seen.get(j)) << "bit " << j << " should be corrupted";
  }
}

TEST(BidiSerial, TwoPassesTogetherLocateExactlyTheOuterPair) {
  // The bi-directional interface's whole point (Sec. 2): right + left
  // locate the outermost faulty cells — and nothing in between.  With
  // faults at 2, 4 and 5, the pair (5 from the right, 2 from the left) is
  // diagnosable; bit 4 stays hidden this element.
  auto memory = ones_with_sa0(8, {2, 4, 5});
  BidiSerialInterface interface(memory);
  const auto right =
      interface.pass(ShiftDirection::right, BitVector(8, true));
  // Refill with ones so the left pass sees the same precondition.
  memory.write(0, BitVector(8, true));
  const auto left = interface.pass(ShiftDirection::left, BitVector(8, true));

  // First corrupted position from the exit end:
  std::uint32_t right_boundary = 8;
  for (std::uint32_t j = 8; j-- > 0;) {
    if (!right.observed[0].get(j)) {
      right_boundary = j;
      break;
    }
  }
  std::uint32_t left_boundary = 8;
  for (std::uint32_t j = 0; j < 8; ++j) {
    if (!left.observed[0].get(j)) {
      left_boundary = j;
      break;
    }
  }
  EXPECT_EQ(right_boundary, 5u);
  EXPECT_EQ(left_boundary, 2u);
}

TEST(UniSerial, OnlyRightShiftAvailable) {
  auto memory = ones_with_sa0(8, {2, 5});
  UniSerialInterface interface(memory);
  const auto result = interface.pass(BitVector(8, true));
  // Identical to the bidirectional right pass: bit 2 masked by bit 5.
  EXPECT_FALSE(result.observed[0].get(5));
  EXPECT_FALSE(result.observed[0].get(2));
  EXPECT_TRUE(result.observed[0].get(7));
  EXPECT_EQ(interface.total_cycles(), 8u);
}

TEST(BidiSerial, FaultySerialWriteCorruptsDownstreamFill) {
  // Data shifted *through* a stuck cell arrives corrupted: after shifting
  // ones through SA0@bit1 of a 4-bit word, cells above the fault hold the
  // forced zero, not the intended background.
  std::vector<faults::FaultInstance> instances = {
      faults::make_cell_fault(FaultKind::sa0, {0, 1})};
  Sram memory(config_nx(1, 4), std::make_unique<faults::FaultSet>(instances));
  BidiSerialInterface interface(memory);
  (void)interface.pass(ShiftDirection::right, BitVector(4, true));
  EXPECT_TRUE(memory.peek({0, 0}));   // below the fault: filled fine
  EXPECT_FALSE(memory.peek({0, 2}));  // transited through the stuck cell
  EXPECT_FALSE(memory.peek({0, 3}));
}

}  // namespace
}  // namespace fastdiag::serial
