// Tests for the fleet service layer: binary serialization round-trips
// (byte-identical re-encode), rejection of truncated/corrupt blobs,
// classifier-cache save/reload with zero probe replays, checkpointed
// sweeps that survive a kill bit-identically, and the framed job-server
// protocol over an in-process pipe pair.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <thread>

#include "core/fastdiag.h"
#include "service/checkpoint.h"
#include "service/protocol.h"
#include "service/serialize.h"
#include "service/server.h"

namespace fastdiag::service {
namespace {

sram::SramConfig small(const std::string& name, std::uint32_t words,
                       std::uint32_t bits, std::uint32_t spares = 8) {
  sram::SramConfig config;
  config.name = name;
  config.words = words;
  config.bits = bits;
  config.spare_rows = spares;
  return config;
}

core::SessionSpec demo_spec(std::uint64_t seed = 7, bool classify = true,
                            bool repair = true) {
  auto spec = core::SessionSpec::builder()
                  .add_sram(small("a", 48, 12))
                  .add_sram(small("b", 32, 8))
                  .defect_rate(0.02)
                  .seed(seed)
                  .classify(classify)
                  .with_repair(repair)
                  .build();
  EXPECT_TRUE(spec.has_value());
  return std::move(spec).value();
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "fastdiag_" + name + "." +
         std::to_string(::getpid());
}

// Byte-at-a-time str encoding: GCC's optimizer flags ByteWriter::str's
// range-insert of short literals with a false-positive -Wstringop-overflow
// under -O3 -Werror, so these test helpers stick to push_back growth.
[[gnu::noinline]] std::vector<std::uint8_t> str_payload(
    const std::string& text) {
  ByteWriter writer;
  writer.u32(static_cast<std::uint32_t>(text.size()));
  for (const char c : text) {
    writer.u8(static_cast<std::uint8_t>(c));
  }
  return std::move(writer).take();
}

[[gnu::noinline]] std::vector<std::uint8_t> evil_march_bytes(
    std::uint64_t width) {
  ByteWriter writer;
  writer.u32(4);  // MarchTest name: "evil"
  for (const char c : {'e', 'v', 'i', 'l'}) {
    writer.u8(static_cast<std::uint8_t>(c));
  }
  writer.u64(1);      // one phase
  writer.u64(width);  // background bitvec width
  writer.u64(0);      // one limb's worth of trailing bytes
  return std::move(writer).take();
}

// ---- primitives -----------------------------------------------------------

TEST(Bytes, PrimitivesRoundTripLittleEndian) {
  ByteWriter writer;
  writer.u8(0xAB);
  writer.u32(0x01020304);
  writer.u64(0x1122334455667788ULL);
  writer.f64(-0.125);
  writer.boolean(true);
  writer.str("hello");

  // The wire image is fixed, independent of host endianness.
  ASSERT_EQ(writer.data()[1], 0x04);  // u32 low byte first
  ASSERT_EQ(writer.data()[2], 0x03);

  ByteReader reader(writer.data().data(), writer.size());
  EXPECT_EQ(reader.u8(), 0xAB);
  EXPECT_EQ(reader.u32(), 0x01020304u);
  EXPECT_EQ(reader.u64(), 0x1122334455667788ULL);
  EXPECT_EQ(reader.f64(), -0.125);
  EXPECT_TRUE(reader.boolean());
  EXPECT_EQ(reader.str(), "hello");
  EXPECT_TRUE(reader.finished());
}

TEST(Bytes, ReaderErrorsAreStickyAndBounded) {
  ByteWriter writer;
  writer.u32(5);
  ByteReader reader(writer.data().data(), writer.size());
  (void)reader.u64();  // short read
  EXPECT_FALSE(reader.ok());
  EXPECT_EQ(reader.u32(), 0u);  // sticky: later reads yield zero
  EXPECT_FALSE(reader.finished());
}

TEST(Bytes, HostileCountsAndBoolsAreRejectedBeforeAllocation) {
  {
    ByteWriter writer;
    writer.u64(1ULL << 60);  // count that cannot fit the remaining bytes
    ByteReader reader(writer.data().data(), writer.size());
    EXPECT_EQ(reader.count(4), 0u);
    EXPECT_FALSE(reader.ok());
  }
  {
    ByteWriter writer;
    writer.u8(2);  // non-canonical bool
    ByteReader reader(writer.data().data(), writer.size());
    (void)reader.boolean();
    EXPECT_FALSE(reader.ok());
  }
  {
    ByteWriter writer;
    writer.u32(100);  // string length past the end
    ByteReader reader(writer.data().data(), writer.size());
    EXPECT_EQ(reader.str(), "");
    EXPECT_FALSE(reader.ok());
  }
}

// ---- embedded encoders ----------------------------------------------------

TEST(Serialize, MarchTestReencodesByteIdentical) {
  const auto test = bisd::FastScheme().classification_test(12);
  ASSERT_TRUE(test.has_value());
  ByteWriter first;
  encode_march_test(first, *test);

  ByteReader reader(first.data().data(), first.size());
  march::MarchTest decoded;
  ASSERT_TRUE(decode_march_test(reader, decoded));
  ASSERT_TRUE(reader.finished());
  EXPECT_EQ(decoded.to_string(), test->to_string());

  ByteWriter second;
  encode_march_test(second, decoded);
  EXPECT_EQ(first.data(), second.data());
}

TEST(Serialize, FoldedAggregateReencodesByteIdentical) {
  core::AggregateReport aggregate;
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    aggregate.fold(core::DiagnosisEngine::execute(demo_spec(seed)));
  }
  ByteWriter first;
  encode_folded(first, aggregate.folded);

  ByteReader reader(first.data().data(), first.size());
  core::AggregateReport::Folded decoded;
  ASSERT_TRUE(decode_folded(reader, decoded));
  ASSERT_TRUE(reader.finished());
  EXPECT_EQ(decoded, aggregate.folded);

  ByteWriter second;
  encode_folded(second, decoded);
  EXPECT_EQ(first.data(), second.data());
}

// ---- reports --------------------------------------------------------------

TEST(Serialize, ReportRoundTripsByteIdentical) {
  const auto report = core::DiagnosisEngine::execute(demo_spec());
  ASSERT_TRUE(report.classification.has_value());
  ASSERT_TRUE(report.repair.has_value());

  const auto blob = encode_report(report);
  auto decoded = decode_report(blob.data(), blob.size());
  ASSERT_TRUE(decoded.has_value()) << decoded.error().message;

  EXPECT_EQ(decoded.value().scheme_name, report.scheme_name);
  EXPECT_EQ(decoded.value().seed, report.seed);
  EXPECT_EQ(decoded.value().total_ns, report.total_ns);
  EXPECT_EQ(decoded.value().injected_faults, report.injected_faults);
  EXPECT_EQ(decoded.value().result.log.to_csv(), report.result.log.to_csv());
  EXPECT_EQ(decoded.value().summary(), report.summary());

  EXPECT_EQ(encode_report(decoded.value()), blob);
}

TEST(Serialize, EveryTruncationOfAReportIsRejected) {
  const auto blob = encode_report(core::DiagnosisEngine::execute(demo_spec()));
  // Every strict prefix must fail cleanly (the format consumes the blob
  // exactly).  Dense coverage near the front, sampled beyond.
  for (std::size_t len = 0; len < blob.size();
       len += (len < 512 ? 1 : 97)) {
    const auto decoded = decode_report(blob.data(), len);
    EXPECT_FALSE(decoded.has_value()) << "prefix length " << len;
  }
}

TEST(Serialize, CorruptReportBytesNeverCrashTheDecoder) {
  const auto blob = encode_report(core::DiagnosisEngine::execute(demo_spec()));
  // Deterministically flip bytes across the blob; each decode must either
  // fail with a DecodeError or produce a value — no UB either way (the
  // sanitizer job runs this same test under ASan+UBSan).
  for (std::size_t i = 0; i < 128; ++i) {
    auto corrupt = blob;
    const std::size_t at = (i * 2654435761u) % corrupt.size();
    corrupt[at] ^= 0x5A;
    const auto decoded = decode_report(corrupt.data(), corrupt.size());
    if (decoded.has_value()) {
      EXPECT_EQ(encode_report(decoded.value()).size(), corrupt.size());
    }
  }
}

TEST(Serialize, WrongMagicAndVersionAreRejectedUpFront) {
  auto blob = encode_report(core::DiagnosisEngine::execute(demo_spec()));
  auto bad_magic = blob;
  bad_magic[0] ^= 0xFF;
  EXPECT_FALSE(decode_report(bad_magic.data(), bad_magic.size()).has_value());

  auto bad_version = blob;
  bad_version[4] = 0xEE;
  const auto decoded = decode_report(bad_version.data(), bad_version.size());
  ASSERT_FALSE(decoded.has_value());
  EXPECT_NE(decoded.error().message.find("version"), std::string::npos);
}

TEST(Serialize, OverflowingBitvecWidthIsRejectedNotWrapped) {
  // A march phase's background bitvec leads with a u64 width.  Widths in
  // [2^64-63, 2^64-1] used to wrap the word-count computation to zero,
  // bypassing the payload and canonical-mask checks and building a
  // BitVector whose width outruns its (empty) limbs — OOB on first get().
  for (const std::uint64_t width :
       {~0ULL, ~0ULL - 62, 0x8000000000000000ULL, 1ULL << 40}) {
    const auto blob = evil_march_bytes(width);
    ByteReader reader(blob.data(), blob.size());
    march::MarchTest test;
    EXPECT_FALSE(decode_march_test(reader, test)) << "width " << width;
    EXPECT_FALSE(reader.ok());
  }
}

// ---- classifier cache -----------------------------------------------------

TEST(CacheSerialize, ReloadedCacheServesWithZeroProbeReplays) {
  diagnosis::ClassifierCache warm;
  const auto spec = demo_spec(5, /*classify=*/true, /*repair=*/false);
  const auto original = core::DiagnosisEngine::execute(
      spec, core::SchemeRegistry::global(), &warm);
  ASSERT_GT(warm.size(), 0u);
  // The default instance_sliced mode absorbs cell-dictionary replays into
  // slab lanes; row dictionaries still replay individually.
  ASSERT_GT(warm.stats().probe_replays + warm.stats().slab_lanes, 0u);

  const auto blob = encode_classifier_cache(warm);
  diagnosis::ClassifierCache fresh;
  const auto imported = decode_classifier_cache(blob.data(), blob.size(), fresh);
  ASSERT_TRUE(imported.has_value()) << imported.error().message;
  EXPECT_EQ(imported.value(), warm.size());
  EXPECT_EQ(fresh.size(), warm.size());

  // The imported dictionaries were never rebuilt here...
  EXPECT_EQ(fresh.stats().probe_replays, 0u);
  EXPECT_EQ(fresh.stats().slab_lanes, 0u);

  // ...yet the same job classifies identically through the fresh cache,
  // still without a single replay.
  const auto replayed = core::DiagnosisEngine::execute(
      spec, core::SchemeRegistry::global(), &fresh);
  EXPECT_EQ(encode_report(replayed), encode_report(original));
  EXPECT_EQ(fresh.stats().probe_replays, 0u);
  EXPECT_EQ(fresh.stats().slab_lanes, 0u);
  EXPECT_EQ(fresh.stats().misses, 0u);

  // Re-encoding the reloaded cache reproduces the blob byte for byte.
  EXPECT_EQ(encode_classifier_cache(fresh), blob);
}

TEST(CacheSerialize, CorruptCacheBlobLeavesTheTargetUntouched) {
  diagnosis::ClassifierCache warm;
  (void)core::DiagnosisEngine::execute(
      demo_spec(5, true, false), core::SchemeRegistry::global(), &warm);
  auto blob = encode_classifier_cache(warm);

  diagnosis::ClassifierCache target;
  auto truncated = blob;
  truncated.resize(truncated.size() / 2);
  EXPECT_FALSE(
      decode_classifier_cache(truncated.data(), truncated.size(), target)
          .has_value());
  EXPECT_EQ(target.size(), 0u);  // all-or-nothing import
}

// ---- checkpoint / resume --------------------------------------------------

core::SweepSpec demo_sweep() {
  core::SweepSpec sweep;
  sweep.base = core::SessionSpec::builder().add_sram(small("a", 32, 8));
  sweep.schemes = {"fast", "baseline"};
  sweep.defect_rates = {0.01, 0.03};
  sweep.seeds = {1, 2, 3};
  return sweep;
}

TEST(Checkpoint, EncodeDecodeRoundTripsByteIdentical) {
  core::AggregateReport aggregate;
  aggregate.fold(core::DiagnosisEngine::execute(demo_spec()));
  SweepCheckpoint checkpoint;
  checkpoint.fingerprint = sweep_fingerprint(demo_sweep());
  checkpoint.position = 1;
  checkpoint.folded = aggregate.folded;

  const auto blob = encode_checkpoint(checkpoint);
  const auto decoded = decode_checkpoint(blob.data(), blob.size());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded.value(), checkpoint);
  EXPECT_EQ(encode_checkpoint(decoded.value()), blob);

  // position != folded.count is an inconsistent image, not a valid resume.
  auto skewed = checkpoint;
  skewed.position = 2;
  const auto bad = encode_checkpoint(skewed);
  EXPECT_FALSE(decode_checkpoint(bad.data(), bad.size()).has_value());
}

TEST(Checkpoint, KilledAndResumedSweepIsBitIdenticalToUninterrupted) {
  const core::DiagnosisEngine engine({.workers = 2});
  const auto sweep = demo_sweep();
  const std::string path = temp_path("ckpt");

  CheckpointedSweepOptions uninterrupted;  // no path: no checkpointing
  const auto whole = run_sweep_with_checkpoints(engine, sweep, uninterrupted);
  ASSERT_TRUE(whole.has_value());
  ASSERT_TRUE(whole.value().finished);

  // "Kill" after 5 of 12 runs: stop_after caps the pull source the same
  // way a SIGKILL between chunks would.
  CheckpointedSweepOptions first;
  first.path = path;
  first.interval = 2;
  first.stop_after = 5;
  const auto killed = run_sweep_with_checkpoints(engine, sweep, first);
  ASSERT_TRUE(killed.has_value());
  EXPECT_FALSE(killed.value().finished);
  EXPECT_FALSE(killed.value().resumed);
  EXPECT_EQ(killed.value().completed, 5u);

  CheckpointedSweepOptions second;
  second.path = path;
  second.interval = 2;
  const auto resumed = run_sweep_with_checkpoints(engine, sweep, second);
  ASSERT_TRUE(resumed.has_value());
  EXPECT_TRUE(resumed.value().resumed);
  EXPECT_TRUE(resumed.value().finished);
  EXPECT_EQ(resumed.value().completed, sweep.cardinality());

  // The acceptance bar: the resumed aggregate is bit-identical to the
  // uninterrupted one — same folded image, same encoded bytes.
  EXPECT_EQ(resumed.value().aggregate.folded, whole.value().aggregate.folded);
  ByteWriter a;
  encode_folded(a, resumed.value().aggregate.folded);
  ByteWriter b;
  encode_folded(b, whole.value().aggregate.folded);
  EXPECT_EQ(a.data(), b.data());
  std::remove(path.c_str());
}

TEST(Checkpoint, MismatchedOrCorruptCheckpointDegradesToFreshStart) {
  const core::DiagnosisEngine engine({.workers = 1});
  const std::string path = temp_path("ckpt_bad");

  // A checkpoint of a *different* sweep must not seed this one.
  auto other = demo_sweep();
  other.seeds = {9, 10};
  SweepCheckpoint foreign;
  foreign.fingerprint = sweep_fingerprint(other);
  ASSERT_TRUE(save_checkpoint_file(path, foreign));

  CheckpointedSweepOptions options;
  options.path = path;
  auto sweep = demo_sweep();
  sweep.schemes = {"fast"};
  sweep.seeds = {1};
  const auto result = run_sweep_with_checkpoints(engine, sweep, options);
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result.value().resumed);
  EXPECT_TRUE(result.value().finished);

  // Corrupt file on disk: load fails soft, run starts fresh.
  std::FILE* file = std::fopen(path.c_str(), "wb");
  ASSERT_NE(file, nullptr);
  std::fputs("not a checkpoint", file);
  std::fclose(file);
  EXPECT_FALSE(load_checkpoint_file(path).has_value());
  const auto again = run_sweep_with_checkpoints(engine, sweep, options);
  ASSERT_TRUE(again.has_value());
  EXPECT_FALSE(again.value().resumed);
  std::remove(path.c_str());
}

// ---- merge associativity --------------------------------------------------

TEST(Folded, MergeIsAssociativeAndOrderInsensitive) {
  std::vector<core::Report> reports;
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    reports.push_back(
        core::DiagnosisEngine::execute(demo_spec(seed, seed % 2 == 0)));
  }
  core::AggregateReport::Folded sequential;
  for (const auto& report : reports) {
    sequential.fold(report);
  }

  // (A + B) + C == A + (B + C) for an arbitrary split.
  core::AggregateReport::Folded a, b, c;
  a.fold(reports[0]);
  a.fold(reports[1]);
  b.fold(reports[2]);
  c.fold(reports[3]);
  c.fold(reports[4]);

  auto left = a;
  left.merge(b);
  left.merge(c);
  auto bc = b;
  bc.merge(c);
  auto right = a;
  right.merge(bc);
  EXPECT_EQ(left, right);
  EXPECT_EQ(left, sequential);
}

// ---- job server over a pipe pair ------------------------------------------

TEST(JobServer, ServesFramesOverPipesAndDrainsOnShutdown) {
  int to_server[2];
  int from_server[2];
  ASSERT_EQ(pipe(to_server), 0);
  ASSERT_EQ(pipe(from_server), 0);

  JobServer server;
  bool drained = false;
  std::thread worker([&] {
    drained = server.serve_connection(to_server[0], from_server[1]);
  });
  const int out = to_server[1];
  const int in = from_server[0];

  Frame response;
  ASSERT_TRUE(write_frame(out, MessageType::ping, std::string()));
  ASSERT_TRUE(read_frame(in, response));
  EXPECT_EQ(response.type, MessageType::ok);

  // A malformed job (no memories) is an error response, not a dead server.
  ASSERT_TRUE(write_frame(out, MessageType::submit_job,
                          encode_job_request(JobRequest{})));
  ASSERT_TRUE(read_frame(in, response));
  EXPECT_EQ(response.type, MessageType::error);

  JobRequest request;
  request.configs = {small("pipe", 32, 8)};
  request.classify = true;
  request.seed = 11;
  ASSERT_TRUE(write_frame(out, MessageType::submit_job,
                          encode_job_request(request)));
  ASSERT_TRUE(read_frame(in, response));
  ASSERT_EQ(response.type, MessageType::job_report);
  const auto report =
      decode_report(response.payload.data(), response.payload.size());
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report.value().seed, 11u);

  // The report a local execute produces is byte-identical to the served one.
  auto local_spec = request.to_spec();
  ASSERT_TRUE(local_spec.has_value());
  diagnosis::ClassifierCache cache;
  const auto local = core::DiagnosisEngine::execute(
      local_spec.value(), core::SchemeRegistry::global(), &cache);
  EXPECT_EQ(encode_report(local), response.payload);

  ASSERT_TRUE(write_frame(out, MessageType::get_stats, std::string()));
  ASSERT_TRUE(read_frame(in, response));
  EXPECT_EQ(response.type, MessageType::stats_json);
  const std::string stats(response.payload.begin(), response.payload.end());
  EXPECT_NE(stats.find("\"jobs_ok\":1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"jobs_failed\":1"), std::string::npos) << stats;

  ASSERT_TRUE(write_frame(out, MessageType::shutdown, std::string()));
  ASSERT_TRUE(read_frame(in, response));
  EXPECT_EQ(response.type, MessageType::ok);
  worker.join();
  EXPECT_TRUE(drained);
  EXPECT_TRUE(server.draining());

  for (int fd : {to_server[0], to_server[1], from_server[0], from_server[1]}) {
    close(fd);
  }
}

TEST(JobServer, ClientCachePathsAreConfinedToTheCacheDir) {
  ServerOptions options;
  options.cache_dir = ::testing::TempDir();
  JobServer server(options);
  int to_server[2];
  int from_server[2];
  ASSERT_EQ(pipe(to_server), 0);
  ASSERT_EQ(pipe(from_server), 0);
  std::thread worker(
      [&] { server.serve_connection(to_server[0], from_server[1]); });
  const int out = to_server[1];
  const int in = from_server[0];

  const auto request = [&](MessageType type, const std::string& name) {
    Frame response;
    EXPECT_TRUE(write_frame(out, type, str_payload(name)));
    EXPECT_TRUE(read_frame(in, response));
    return response.type;
  };

  // Traversal and absolute paths are refused before touching the fs.
  EXPECT_EQ(request(MessageType::save_cache, "../evil"), MessageType::error);
  EXPECT_EQ(request(MessageType::save_cache, "/tmp/evil"),
            MessageType::error);
  EXPECT_EQ(request(MessageType::load_cache, ".."), MessageType::error);
  // A bare name lands inside the configured directory.
  const std::string name = "confined." + std::to_string(::getpid()) + ".fdcc";
  EXPECT_EQ(request(MessageType::save_cache, name), MessageType::ok);
  EXPECT_EQ(request(MessageType::load_cache, name), MessageType::stats_json);
  std::remove((options.cache_dir + "/" + name).c_str());

  Frame response;
  ASSERT_TRUE(write_frame(out, MessageType::shutdown, std::string()));
  ASSERT_TRUE(read_frame(in, response));
  worker.join();
  for (int fd : {to_server[0], to_server[1], from_server[0], from_server[1]}) {
    close(fd);
  }
}

TEST(JobServer, ClientCacheRequestsAreRefusedWithoutACacheDir) {
  // A default-constructed server has no cache dir: protocol-level cache
  // persistence is off entirely (the operator-facing *_file API remains).
  JobServer server;
  int to_server[2];
  int from_server[2];
  ASSERT_EQ(pipe(to_server), 0);
  ASSERT_EQ(pipe(from_server), 0);
  std::thread worker(
      [&] { server.serve_connection(to_server[0], from_server[1]); });
  Frame response;
  ASSERT_TRUE(write_frame(to_server[1], MessageType::save_cache,
                          str_payload("innocent.fdcc")));
  ASSERT_TRUE(read_frame(from_server[0], response));
  EXPECT_EQ(response.type, MessageType::error);
  ASSERT_TRUE(write_frame(to_server[1], MessageType::shutdown,
                          std::string()));
  ASSERT_TRUE(read_frame(from_server[0], response));
  worker.join();
  for (int fd : {to_server[0], to_server[1], from_server[0], from_server[1]}) {
    close(fd);
  }
}

TEST(JobServer, CacheFilesRoundTripThroughTheServer) {
  const std::string path = temp_path("server_cache");
  JobRequest request;
  request.configs = {small("svc", 32, 8)};
  request.classify = true;

  {
    JobServer server;
    auto spec = request.to_spec();
    ASSERT_TRUE(spec.has_value());
    // Warm the server cache directly through its public surface: one
    // served job via the pipe path would do the same.
    int fds[2];
    ASSERT_EQ(pipe(fds), 0);
    int back[2];
    ASSERT_EQ(pipe(back), 0);
    std::thread worker([&] { server.serve_connection(fds[0], back[1]); });
    Frame response;
    ASSERT_TRUE(write_frame(fds[1], MessageType::submit_job,
                            encode_job_request(request)));
    ASSERT_TRUE(read_frame(back[0], response));
    ASSERT_EQ(response.type, MessageType::job_report);
    ASSERT_TRUE(server.save_cache_file(path));
    ASSERT_TRUE(write_frame(fds[1], MessageType::shutdown, std::string()));
    ASSERT_TRUE(read_frame(back[0], response));
    worker.join();
    for (int fd : {fds[0], fds[1], back[0], back[1]}) {
      close(fd);
    }
  }

  JobServer reloaded;
  EXPECT_GT(reloaded.load_cache_file(path), 0);
  EXPECT_EQ(reloaded.cache().stats().probe_replays, 0u);
  EXPECT_EQ(reloaded.load_cache_file(path + ".missing"), -1);
  std::remove(path.c_str());
}

TEST(Protocol, MalformedFramesAreRejected) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  // Bad magic.
  ByteWriter writer;
  writer.u32(0xDEADBEEF);
  writer.u8(0);
  writer.u32(0);
  ASSERT_EQ(write(fds[1], writer.data().data(), writer.size()),
            static_cast<ssize_t>(writer.size()));
  Frame frame;
  EXPECT_FALSE(read_frame(fds[0], frame));
  close(fds[0]);
  close(fds[1]);

  // Oversized payload length.
  ASSERT_EQ(pipe(fds), 0);
  ByteWriter big;
  big.u32(kFrameMagic);
  big.u8(static_cast<std::uint8_t>(MessageType::ping));
  big.u32(kMaxFramePayload + 1);
  ASSERT_EQ(write(fds[1], big.data().data(), big.size()),
            static_cast<ssize_t>(big.size()));
  EXPECT_FALSE(read_frame(fds[0], frame));
  close(fds[0]);
  close(fds[1]);

  JobRequest request;
  request.configs = {small("x", 16, 4)};
  auto payload = encode_job_request(request);
  payload.resize(payload.size() - 1);  // truncated request payload
  EXPECT_FALSE(decode_job_request(payload.data(), payload.size()).has_value());
}

}  // namespace
}  // namespace fastdiag::service
