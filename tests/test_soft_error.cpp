// Tests for the in-field soft-error subsystem: the SEC Hamming codec, the
// seeded upset-event generator, the SoftErrorBehavior layer (transient
// flips, intermittent pins, ECC masking and miscorrection), the
// periodic_scan scheme end to end through the engine (window resolution,
// scrub policies, worker bit-identity), spec validation of the new knobs,
// and the v2 serialization of the soft-error outcome.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "bisd/periodic_scan.h"
#include "core/fastdiag.h"
#include "service/serialize.h"
#include "sram/ecc.h"

namespace fastdiag {
namespace {

using faults::ScrubPolicy;
using faults::SoftErrorSpec;
using faults::UpsetEvent;
using faults::UpsetKind;
using sram::CellCoord;
using sram::EccCodec;
using sram::SramConfig;

SramConfig geometry(const std::string& name, std::uint32_t words,
                    std::uint32_t bits) {
  SramConfig config;
  config.name = name;
  config.words = words;
  config.bits = bits;
  return config;
}

// ---- EccCodec --------------------------------------------------------------

TEST(EccCodec, CheckBitCountMatchesTheHammingBound) {
  EXPECT_EQ(EccCodec::check_bits_for(1), 2u);
  EXPECT_EQ(EccCodec::check_bits_for(4), 3u);
  EXPECT_EQ(EccCodec::check_bits_for(8), 4u);
  EXPECT_EQ(EccCodec::check_bits_for(11), 4u);
  EXPECT_EQ(EccCodec::check_bits_for(16), 5u);
  EXPECT_EQ(EccCodec::check_bits_for(26), 5u);
  EXPECT_EQ(EccCodec::check_bits_for(32), 6u);
}

TEST(EccCodec, CleanWordsDecodeClean) {
  Rng rng(7);
  for (const std::uint32_t width : {4u, 8u, 16u, 21u, 32u}) {
    const EccCodec codec(width);
    BitVector data(width);
    for (std::uint32_t b = 0; b < width; ++b) {
      data.set(b, rng.bernoulli(0.5));
    }
    BitVector copy = data;
    const auto decode = codec.decode(copy, codec.encode(data));
    EXPECT_EQ(decode.outcome, EccCodec::DecodeOutcome::clean) << width;
    EXPECT_EQ(decode.syndrome, 0u) << width;
    EXPECT_EQ(copy, data) << width;
  }
}

TEST(EccCodec, EverySingleDataBitErrorIsCorrectedInPlace) {
  Rng rng(11);
  for (const std::uint32_t width : {4u, 8u, 16u, 21u, 32u}) {
    const EccCodec codec(width);
    BitVector data(width);
    for (std::uint32_t b = 0; b < width; ++b) {
      data.set(b, rng.bernoulli(0.5));
    }
    const std::uint32_t check = codec.encode(data);
    for (std::uint32_t upset = 0; upset < width; ++upset) {
      BitVector corrupted = data;
      corrupted.flip(upset);
      const auto decode = codec.decode(corrupted, check);
      EXPECT_EQ(decode.outcome, EccCodec::DecodeOutcome::corrected_data)
          << width << ":" << upset;
      EXPECT_EQ(decode.bit, static_cast<std::int32_t>(upset))
          << width << ":" << upset;
      EXPECT_EQ(corrupted, data) << width << ":" << upset;
    }
  }
}

TEST(EccCodec, EverySingleCheckBitErrorIsIdentifiedWithoutTouchingData) {
  const std::uint32_t width = 16;
  const EccCodec codec(width);
  BitVector data(width);
  data.set(3, true);
  data.set(9, true);
  const std::uint32_t check = codec.encode(data);
  for (std::uint32_t k = 0; k < codec.check_bits(); ++k) {
    BitVector copy = data;
    const auto decode = codec.decode(copy, check ^ (1u << k));
    EXPECT_EQ(decode.outcome, EccCodec::DecodeOutcome::corrected_check) << k;
    EXPECT_EQ(decode.bit, static_cast<std::int32_t>(k)) << k;
    EXPECT_EQ(copy, data) << k;
  }
}

TEST(EccCodec, DoubleDataErrorsNeverDecodeToTheWrittenWord) {
  // Patel's problem: a SEC code treats every nonzero syndrome as a single
  // error, so two flips either alias to a confident wrong correction or
  // land outside the code — never back on the written word.
  const std::uint32_t width = 16;
  const EccCodec codec(width);
  BitVector data(width);
  data.set(5, true);
  const std::uint32_t check = codec.encode(data);
  for (std::uint32_t a = 0; a < width; ++a) {
    for (std::uint32_t b = a + 1; b < width; ++b) {
      BitVector corrupted = data;
      corrupted.flip(a);
      corrupted.flip(b);
      const auto decode = codec.decode(corrupted, check);
      EXPECT_NE(decode.outcome, EccCodec::DecodeOutcome::clean)
          << a << "," << b;
      EXPECT_NE(corrupted, data) << a << "," << b;
    }
  }
}

// ---- generate_upsets -------------------------------------------------------

SoftErrorSpec enabled_spec() {
  SoftErrorSpec soft;
  soft.enabled = true;
  return soft;
}

TEST(GenerateUpsets, SameSeedDrawsTheSameSortedInRangeStream) {
  const auto config = geometry("gen", 64, 16);
  const auto soft = enabled_spec();
  Rng a(99);
  Rng b(99);
  const auto first = faults::generate_upsets(config, soft, a);
  const auto second = faults::generate_upsets(config, soft, b);
  EXPECT_EQ(first, second);
  ASSERT_FALSE(first.empty());
  std::uint64_t previous = 0;
  for (const auto& event : first) {
    EXPECT_GE(event.time_ns, previous);
    EXPECT_LE(event.time_ns, soft.duration_ns);
    EXPECT_LT(event.cell.row, config.words);
    EXPECT_LT(event.cell.bit, config.bits);  // no ECC: data columns only
    EXPECT_EQ(event.kind, UpsetKind::transient);
    previous = event.time_ns;
  }
  // ~duration / mean_gap events; allow wide slack, but the stream must be
  // dense enough to exercise the sweeps.
  EXPECT_GT(first.size(), 20u);
  EXPECT_LT(first.size(), 100u);
}

TEST(GenerateUpsets, IntermittentFractionProducesHeldEvents) {
  const auto config = geometry("gen", 64, 16);
  auto soft = enabled_spec();
  soft.intermittent_fraction = 1.0;
  Rng rng(5);
  const auto events = faults::generate_upsets(config, soft, rng);
  ASSERT_FALSE(events.empty());
  for (const auto& event : events) {
    EXPECT_EQ(event.kind, UpsetKind::intermittent);
    EXPECT_EQ(event.hold_ns, soft.intermittent_hold_ns);
  }
}

TEST(GenerateUpsets, EccSpreadsEventsIntoCheckColumns) {
  const auto config = geometry("gen", 64, 8);
  auto soft = enabled_spec();
  soft.ecc = true;
  soft.mean_upset_gap_ns = 1'000;  // dense stream so check hits are certain
  Rng rng(3);
  const auto events = faults::generate_upsets(config, soft, rng);
  const std::uint32_t check_bits = EccCodec::check_bits_for(config.bits);
  bool saw_check_column = false;
  for (const auto& event : events) {
    EXPECT_LT(event.cell.bit, config.bits + check_bits);
    if (event.cell.bit >= config.bits) {
      saw_check_column = true;
      // Check storage has no read path to pin: always transient.
      EXPECT_EQ(event.kind, UpsetKind::transient);
    }
  }
  EXPECT_TRUE(saw_check_column);
}

// ---- SoftErrorBehavior -----------------------------------------------------

/// One 8x8 in-field memory with handcrafted events, zero static defects.
bisd::SocUnderTest field_soc(std::vector<UpsetEvent> events,
                             const SoftErrorSpec& soft) {
  bisd::SocUnderTest soc;
  soc.add_in_field_memory(geometry("field", 8, 8), {}, std::move(events),
                          soft);
  return soc;
}

void write_zeros(sram::Sram& memory) {
  const BitVector zero(memory.bits());
  for (std::uint32_t addr = 0; addr < memory.words(); ++addr) {
    memory.write(addr, zero);
  }
}

TEST(SoftErrorBehavior, TransientFlipAppearsAtItsTimestampAndScrubsAway) {
  auto soc = field_soc(
      {{.time_ns = 100, .cell = {2, 3}, .kind = UpsetKind::transient}},
      enabled_spec());
  auto& memory = soc.memory(0);
  write_zeros(memory);

  memory.advance_time_ns(99);
  EXPECT_EQ(memory.read(2).popcount(), 0u) << "upset visible before its time";

  memory.advance_time_ns(1);  // now == event time: flip committed
  EXPECT_TRUE(memory.read(2).get(3));
  EXPECT_EQ(memory.read(2).popcount(), 1u);

  memory.write(2, BitVector(memory.bits()));  // scrub
  EXPECT_EQ(memory.read(2).popcount(), 0u);
  memory.advance_time_ns(1'000'000);
  EXPECT_EQ(memory.read(2).popcount(), 0u) << "scrubbed flip returned";
}

TEST(SoftErrorBehavior, IntermittentPinSelfClearsWithoutScrubbing) {
  auto soc = field_soc({{.time_ns = 100,
                         .cell = {1, 0},
                         .kind = UpsetKind::intermittent,
                         .hold_ns = 50}},
                       enabled_spec());
  auto& memory = soc.memory(0);
  write_zeros(memory);

  memory.advance_time_ns(120);  // inside [100, 150)
  EXPECT_TRUE(memory.read(1).get(0));

  memory.advance_time_ns(30);  // t = 150: hold expired, no scrub issued
  EXPECT_FALSE(memory.read(1).get(0));
  EXPECT_EQ(soc.soft_behavior(0)->escaped_cells(memory.cells_mut(),
                                                memory.now_ns()),
            0u);
}

TEST(SoftErrorBehavior, EccMasksSingleUpsetsAndCountsTheCorrection) {
  auto soft = enabled_spec();
  soft.ecc = true;
  auto soc = field_soc(
      {{.time_ns = 10, .cell = {0, 2}, .kind = UpsetKind::transient}}, soft);
  auto& memory = soc.memory(0);
  auto* behavior = soc.soft_behavior(0);
  write_zeros(memory);

  memory.advance_time_ns(20);
  EXPECT_EQ(memory.read(0).popcount(), 0u) << "single upset not masked";
  EXPECT_EQ(behavior->ecc_stats().corrected, 1u);
  EXPECT_EQ(behavior->ecc_stats().miscorrected, 0u);
  EXPECT_TRUE(behavior->last_read_corrected());
  EXPECT_EQ(behavior->escaped_cells(memory.cells_mut(), memory.now_ns()),
            0u);
}

TEST(SoftErrorBehavior, DoubleUpsetsInOneWordEscapeTheEccAsMiscorrection) {
  auto soft = enabled_spec();
  soft.ecc = true;
  auto soc = field_soc(
      {{.time_ns = 10, .cell = {0, 2}, .kind = UpsetKind::transient},
       {.time_ns = 11, .cell = {0, 5}, .kind = UpsetKind::transient}},
      soft);
  auto& memory = soc.memory(0);
  auto* behavior = soc.soft_behavior(0);
  write_zeros(memory);

  memory.advance_time_ns(20);
  EXPECT_NE(memory.read(0).popcount(), 0u)
      << "double error decoded back to the written word";
  const auto& stats = behavior->ecc_stats();
  EXPECT_GE(stats.miscorrected + stats.uncorrectable, 1u);
  EXPECT_GT(behavior->escaped_cells(memory.cells_mut(), memory.now_ns()),
            0u);
}

TEST(SoftErrorBehavior, PerCellAndWordKernelsSeeIdenticalEccAccounting) {
  auto soft = enabled_spec();
  soft.ecc = true;
  const std::vector<UpsetEvent> events = {
      {.time_ns = 10, .cell = {0, 2}, .kind = UpsetKind::transient},
      {.time_ns = 12, .cell = {3, 1}, .kind = UpsetKind::transient},
      {.time_ns = 15, .cell = {3, 6}, .kind = UpsetKind::transient},
  };
  std::vector<BitVector> reads[2];
  faults::SoftErrorBehavior::EccStats stats[2];
  const sram::AccessKernel kernels[2] = {sram::AccessKernel::per_cell,
                                         sram::AccessKernel::word_parallel};
  for (int k = 0; k < 2; ++k) {
    auto soc = field_soc(events, soft);
    auto& memory = soc.memory(0);
    memory.set_access_kernel(kernels[k]);
    write_zeros(memory);
    memory.advance_time_ns(20);
    for (std::uint32_t addr = 0; addr < memory.words(); ++addr) {
      reads[k].push_back(memory.read(addr));
    }
    stats[k] = soc.soft_behavior(0)->ecc_stats();
  }
  EXPECT_EQ(reads[0], reads[1]);
  EXPECT_EQ(stats[0], stats[1]);
}

// ---- periodic_scan through the engine --------------------------------------

core::SessionSpec in_field_spec(const SoftErrorSpec& soft,
                                std::uint64_t seed = 7) {
  auto spec = core::SessionSpec::builder()
                  .add_sram(geometry("ifa", 64, 16))
                  .add_sram(geometry("ifb", 48, 12))
                  .defect_rate(0.0)
                  .seed(seed)
                  .scheme("periodic_scan")
                  .soft_error(soft)
                  .build();
  EXPECT_TRUE(spec.has_value()) << spec.error().to_string();
  return std::move(spec).value();
}

TEST(PeriodicScan, ResolvesTransientsToTheirScanWindows) {
  const auto report =
      core::DiagnosisEngine::execute(in_field_spec(enabled_spec()));
  ASSERT_TRUE(report.soft_error.has_value());
  const auto& outcome = *report.soft_error;

  EXPECT_EQ(outcome.scan_sweeps, 100u);  // 1 ms window / 10 us period
  EXPECT_GT(outcome.scored_upsets, 0u);
  EXPECT_LE(outcome.scored_upsets, outcome.transient_upsets);
  EXPECT_LE(outcome.transient_upsets, outcome.injected_upsets);
  EXPECT_LE(outcome.correct_window, outcome.detected_upsets);
  EXPECT_LE(outcome.detected_upsets, outcome.scored_upsets);

  // The acceptance bar: >= 95 % of scored transients resolve to exactly
  // the scan window that covers their event time.
  EXPECT_GE(outcome.resolution_rate(), 0.95);
  EXPECT_GE(outcome.detection_rate(), 0.95);
  // on_detect scrubbing (the default) keeps the residual small.
  EXPECT_GT(outcome.scrub_writes, 0u);
  EXPECT_LT(outcome.escape_rate(), 0.25);
}

TEST(PeriodicScan, EccMasksSingleUpsetsFromTheComparator) {
  auto soft = enabled_spec();
  soft.ecc = true;
  const auto report = core::DiagnosisEngine::execute(in_field_spec(soft));
  ASSERT_TRUE(report.soft_error.has_value());
  const auto& outcome = *report.soft_error;

  // With on-die ECC the decoder silently corrects single upsets before the
  // comparator sees them: correction activity replaces comparator hits.
  EXPECT_GT(outcome.ecc_corrected, 0u);
  EXPECT_LT(outcome.detection_rate(), 0.5);

  const auto no_ecc =
      core::DiagnosisEngine::execute(in_field_spec(enabled_spec()));
  EXPECT_LT(outcome.detected_upsets, no_ecc.soft_error->detected_upsets);
}

TEST(PeriodicScan, ScrubPolicyNoneLetsUpsetsAccumulate) {
  auto none = enabled_spec();
  none.scrub = ScrubPolicy::none;
  const auto report_none =
      core::DiagnosisEngine::execute(in_field_spec(none));
  const auto report_scrub =
      core::DiagnosisEngine::execute(in_field_spec(enabled_spec()));
  ASSERT_TRUE(report_none.soft_error.has_value());
  ASSERT_TRUE(report_scrub.soft_error.has_value());

  EXPECT_EQ(report_none.soft_error->scrub_writes, 0u);
  EXPECT_GT(report_none.soft_error->escaped_cells, 0u);
  EXPECT_GE(report_none.soft_error->escaped_cells,
            report_scrub.soft_error->escaped_cells);

  auto periodic = enabled_spec();
  periodic.scrub = ScrubPolicy::periodic;
  const auto report_periodic =
      core::DiagnosisEngine::execute(in_field_spec(periodic));
  // Periodic scrubbing rewrites every word every sweep.
  EXPECT_GE(report_periodic.soft_error->scrub_writes,
            report_scrub.soft_error->scrub_writes);
  EXPECT_LE(report_periodic.soft_error->escaped_cells,
            report_none.soft_error->escaped_cells);
}

TEST(PeriodicScan, SerialAndEightWorkerRunsEncodeByteIdentical) {
  auto soft = enabled_spec();
  soft.intermittent_fraction = 0.2;
  soft.ecc = true;
  std::vector<core::SessionSpec> specs;
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull, 6ull}) {
    specs.push_back(in_field_spec(soft, seed));
  }
  const auto serial = core::DiagnosisEngine({.workers = 1}).run_batch(specs);
  const auto parallel =
      core::DiagnosisEngine({.workers = 8}).run_batch(specs);
  ASSERT_EQ(serial.run_count(), specs.size());
  ASSERT_EQ(parallel.run_count(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(service::encode_report(serial.runs[i]),
              service::encode_report(parallel.runs[i]))
        << "run " << i;
  }
  EXPECT_EQ(serial.folded, parallel.folded);
}

TEST(PeriodicScan, AggregateSurfacesSoftErrorStats) {
  std::vector<core::SessionSpec> specs = {in_field_spec(enabled_spec(), 1),
                                          in_field_spec(enabled_spec(), 2)};
  const auto batch = core::DiagnosisEngine({.workers = 2}).run_batch(specs);
  const auto detection = batch.soft_detection_stats();
  EXPECT_GE(detection.min, 0.95);
  EXPECT_LE(detection.max, 1.0);
  EXPECT_NE(batch.summary().find("upset detection"), std::string::npos);
}

// ---- spec validation -------------------------------------------------------

TEST(SoftErrorSpecValidation, InconsistentKnobsAreRejected) {
  const auto base = core::SessionSpec::builder()
                        .add_sram(geometry("v", 32, 8))
                        .scheme("periodic_scan");
  const auto expect_invalid = [&](SoftErrorSpec soft) {
    soft.enabled = true;
    auto builder = base;
    const auto spec = builder.soft_error(soft).build();
    ASSERT_FALSE(spec.has_value());
    EXPECT_EQ(spec.error().code, core::ConfigErrorCode::invalid_soft_error);
  };
  expect_invalid({.scan_period_ns = 0});
  expect_invalid({.duration_ns = 5'000, .scan_period_ns = 10'000});
  expect_invalid({.mean_upset_gap_ns = 0});
  expect_invalid({.intermittent_fraction = 1.5});
  expect_invalid({.intermittent_fraction = 0.5, .intermittent_hold_ns = 0});
}

TEST(SoftErrorSpecValidation, RepairIsAManufacturingFlowPass) {
  auto builder = core::SessionSpec::builder()
                     .add_sram(geometry("v", 32, 8))
                     .scheme("periodic_scan")
                     .soft_error(enabled_spec())
                     .with_repair(true);
  const auto spec = builder.build();
  ASSERT_FALSE(spec.has_value());
  EXPECT_EQ(spec.error().code, core::ConfigErrorCode::invalid_soft_error);
}

TEST(SoftErrorSpecValidation, SchemeAndWorkloadMustAgree) {
  // In-field scheme without the workload...
  auto bare = core::SessionSpec::builder()
                  .add_sram(geometry("v", 32, 8))
                  .scheme("periodic_scan")
                  .build();
  ASSERT_FALSE(bare.has_value());
  EXPECT_EQ(bare.error().code,
            core::ConfigErrorCode::scheme_capability_mismatch);

  // ...and the workload on a manufacturing scheme both fail at build().
  auto manufacturing = core::SessionSpec::builder()
                           .add_sram(geometry("v", 32, 8))
                           .scheme("fast")
                           .soft_error(enabled_spec())
                           .build();
  ASSERT_FALSE(manufacturing.has_value());
  EXPECT_EQ(manufacturing.error().code,
            core::ConfigErrorCode::scheme_capability_mismatch);
}

TEST(SoftErrorSpecValidation, RegistryAdvertisesTheInFieldCapability) {
  const auto& registry = core::SchemeRegistry::global();
  EXPECT_TRUE(registry.capabilities("periodic_scan").in_field);
  EXPECT_FALSE(registry.capabilities("fast").in_field);
  EXPECT_FALSE(registry.capabilities("baseline").in_field);
}

// ---- serialization ---------------------------------------------------------

TEST(SoftErrorSerialize, ReportWithOutcomeRoundTripsByteIdentical) {
  auto soft = enabled_spec();
  soft.ecc = true;
  const auto report = core::DiagnosisEngine::execute(in_field_spec(soft));
  ASSERT_TRUE(report.soft_error.has_value());

  const auto blob = service::encode_report(report);
  const auto decoded = service::decode_report(blob.data(), blob.size());
  ASSERT_TRUE(decoded.has_value()) << decoded.error().message;
  ASSERT_TRUE(decoded.value().soft_error.has_value());
  EXPECT_EQ(decoded.value().soft_error, report.soft_error);
  EXPECT_EQ(service::encode_report(decoded.value()), blob);
}

TEST(SoftErrorSerialize, FoldedSoftMetricsSurviveTheRoundTrip) {
  std::vector<core::SessionSpec> specs = {in_field_spec(enabled_spec(), 3),
                                          in_field_spec(enabled_spec(), 4)};
  const auto batch = core::DiagnosisEngine({.workers = 2}).run_batch(specs);
  const auto& folded = batch.folded;

  service::ByteWriter writer;
  service::encode_folded(writer, folded);
  service::ByteReader reader(writer.data().data(), writer.size());
  core::AggregateReport::Folded decoded;
  ASSERT_TRUE(service::decode_folded(reader, decoded));
  EXPECT_TRUE(reader.finished());
  EXPECT_EQ(decoded, folded);
}

}  // namespace
}  // namespace fastdiag
