// Unit tests for src/sram: config, cell array, behavioral memory, repair,
// and the switch-level 6T cell model (Fig. 6 reasoning).
#include <gtest/gtest.h>

#include <stdexcept>

#include "sram/cell_array.h"
#include "sram/config.h"
#include "sram/electrical.h"
#include "sram/sram.h"
#include "sram/timing.h"

namespace fastdiag::sram {
namespace {

SramConfig small_config() {
  SramConfig config;
  config.name = "t8x4";
  config.words = 8;
  config.bits = 4;
  return config;
}

// ------------------------------------------------------------------ Config

TEST(SramConfig, ValidConfigPasses) { EXPECT_NO_THROW(small_config().validate()); }

TEST(SramConfig, ZeroWordsRejected) {
  auto config = small_config();
  config.words = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(SramConfig, ZeroBitsRejected) {
  auto config = small_config();
  config.bits = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(SramConfig, EmptyNameRejected) {
  auto config = small_config();
  config.name.clear();
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(SramConfig, BenchmarkMatchesPaperCaseStudy) {
  const auto config = benchmark_sram();
  EXPECT_EQ(config.words, 512u);
  EXPECT_EQ(config.bits, 100u);
  EXPECT_EQ(config.cell_count(), 51'200u);
}

// --------------------------------------------------------------- CellArray

TEST(CellArray, StartsAllZero) {
  CellArray cells(4, 3);
  for (std::uint32_t r = 0; r < 4; ++r) {
    for (std::uint32_t b = 0; b < 3; ++b) {
      EXPECT_FALSE(cells.get({r, b}));
    }
  }
}

TEST(CellArray, SetGetRoundTrip) {
  CellArray cells(4, 3);
  cells.set({2, 1}, true);
  EXPECT_TRUE(cells.get({2, 1}));
  EXPECT_FALSE(cells.get({1, 2}));
}

TEST(CellArray, RowAccess) {
  CellArray cells(4, 3);
  cells.set_row(1, BitVector::from_string("101"));
  EXPECT_EQ(cells.get_row(1).to_string(), "101");
  EXPECT_TRUE(cells.get({1, 0}));
  EXPECT_FALSE(cells.get({1, 1}));
  EXPECT_TRUE(cells.get({1, 2}));
}

TEST(CellArray, OutOfRangeThrows) {
  CellArray cells(4, 3);
  EXPECT_THROW((void)cells.get({4, 0}), std::out_of_range);
  EXPECT_THROW((void)cells.get({0, 3}), std::out_of_range);
  EXPECT_THROW(cells.set_row(0, BitVector(5)), std::invalid_argument);
}

TEST(CellArray, FlatIndexIsRowMajor) {
  CellArray cells(4, 3);
  EXPECT_EQ(cells.flat_index({0, 0}), 0u);
  EXPECT_EQ(cells.flat_index({1, 0}), 3u);
  EXPECT_EQ(cells.flat_index({2, 2}), 8u);
}

TEST(CellArray, FillSetsEverything) {
  CellArray cells(3, 3);
  cells.fill(true);
  EXPECT_TRUE(cells.get({2, 2}));
  cells.fill(false);
  EXPECT_FALSE(cells.get({2, 2}));
}

// -------------------------------------------------------------------- Sram

TEST(Sram, FaultFreeReadAfterWrite) {
  Sram mem(small_config());
  const auto word = BitVector::from_string("1010");
  mem.write(3, word);
  EXPECT_EQ(mem.read(3), word);
  EXPECT_EQ(mem.read(0), BitVector(4, false));
}

TEST(Sram, WriteWidthMismatchThrows) {
  Sram mem(small_config());
  EXPECT_THROW(mem.write(0, BitVector(5)), std::invalid_argument);
}

TEST(Sram, AddressOutOfRangeThrows) {
  Sram mem(small_config());
  EXPECT_THROW((void)mem.read(8), std::out_of_range);
  EXPECT_THROW(mem.write(100, BitVector(4)), std::out_of_range);
}

TEST(Sram, IdleModeBlocksPort) {
  Sram mem(small_config());
  mem.set_mode(Mode::idle);
  EXPECT_THROW((void)mem.read(0), std::logic_error);
  EXPECT_THROW(mem.write(0, BitVector(4)), std::logic_error);
  mem.set_mode(Mode::normal);
  EXPECT_NO_THROW((void)mem.read(0));
}

TEST(Sram, CountersTrackOperations) {
  Sram mem(small_config());
  (void)mem.read(0);
  mem.write(1, BitVector(4));
  mem.nwrc_write(1, BitVector(4, true));
  EXPECT_EQ(mem.counters().reads, 1u);
  EXPECT_EQ(mem.counters().writes, 1u);
  EXPECT_EQ(mem.counters().nwrc_writes, 1u);
  mem.reset_counters();
  EXPECT_EQ(mem.counters().reads, 0u);
}

TEST(Sram, NwrcBehavesLikeWriteOnHealthyCells) {
  Sram mem(small_config());
  mem.nwrc_write(2, BitVector::from_string("1111"));
  EXPECT_EQ(mem.read(2), BitVector::from_string("1111"));
  mem.nwrc_write(2, BitVector::from_string("0000"));
  EXPECT_EQ(mem.read(2), BitVector::from_string("0000"));
}

TEST(Sram, ReadBitMatchesWordRead) {
  Sram mem(small_config());
  mem.write(5, BitVector::from_string("0110"));
  EXPECT_FALSE(mem.read_bit(5, 0));
  EXPECT_TRUE(mem.read_bit(5, 1));
  EXPECT_TRUE(mem.read_bit(5, 2));
  EXPECT_FALSE(mem.read_bit(5, 3));
  EXPECT_THROW((void)mem.read_bit(5, 4), std::out_of_range);
}

TEST(Sram, TimeAdvances) {
  Sram mem(small_config());
  EXPECT_EQ(mem.now_ns(), 0u);
  mem.advance_time_ns(125);
  mem.advance_time_ns(75);
  EXPECT_EQ(mem.now_ns(), 200u);
}

TEST(Sram, PokePeekBypassPort) {
  Sram mem(small_config());
  mem.poke({4, 2}, true);
  EXPECT_TRUE(mem.peek({4, 2}));
  EXPECT_EQ(mem.counters().reads, 0u);
}

// ------------------------------------------------------------------ Repair

TEST(SramRepair, RemapsRowToSpare) {
  Sram mem(small_config());
  mem.repair_row(3, 0);
  EXPECT_TRUE(mem.is_repaired(3));
  EXPECT_FALSE(mem.is_repaired(2));
  EXPECT_EQ(mem.spares_used(), 1u);
  mem.write(3, BitVector::from_string("1001"));
  EXPECT_EQ(mem.read(3), BitVector::from_string("1001"));
}

TEST(SramRepair, SpareDoubleUseRejected) {
  Sram mem(small_config());
  mem.repair_row(3, 0);
  EXPECT_THROW(mem.repair_row(4, 0), std::invalid_argument);
}

TEST(SramRepair, AddressDoubleRepairRejected) {
  Sram mem(small_config());
  mem.repair_row(3, 0);
  EXPECT_THROW(mem.repair_row(3, 1), std::invalid_argument);
}

TEST(SramRepair, SpareIndexOutOfRangeRejected) {
  Sram mem(small_config());  // spare_rows defaults to 2
  EXPECT_THROW(mem.repair_row(0, 2), std::invalid_argument);
}

TEST(SramRepair, NoSparesConfiguredRejected) {
  auto config = small_config();
  config.spare_rows = 0;
  Sram mem(config);
  EXPECT_THROW(mem.repair_row(0, 0), std::invalid_argument);
}

// ----------------------------------------------------- Electrical 6T model

constexpr std::uint64_t kRetention = 1000;  // ns, for the cell-level tests

TEST(SixTCell, NormalWriteFlipsHealthyCell) {
  SixTCell cell;
  EXPECT_TRUE(cell.write_cycle(true, bitline_conditioning(true, false), 0,
                               kRetention));
  EXPECT_TRUE(cell.read_cycle(1, kRetention));
  EXPECT_TRUE(cell.write_cycle(false, bitline_conditioning(false, false), 2,
                               kRetention));
  EXPECT_FALSE(cell.read_cycle(3, kRetention));
}

TEST(SixTCell, NwrcFlipsHealthyCell) {
  // Sec. 3.4: "a good cell has no problem writing a ONE" under NWRC.
  SixTCell cell;
  EXPECT_TRUE(cell.write_cycle(true, bitline_conditioning(true, true), 0,
                               kRetention));
  EXPECT_TRUE(cell.read_cycle(1, kRetention));
}

TEST(SixTCell, NwrcFailsOnOpenPullup) {
  // The faulty cell's node A "never exceeds node B": no flip under NWRC.
  SixTCell cell;
  cell.break_pullup_a();
  EXPECT_FALSE(cell.write_cycle(true, bitline_conditioning(true, true), 0,
                                kRetention));
  EXPECT_FALSE(cell.read_cycle(1, kRetention));
}

TEST(SixTCell, NormalWriteStillFlipsOpenPullupCell) {
  // A normal W1 drives BL to Vcc, so the defective cell flips anyway —
  // which is exactly why plain March tests cannot see the defect.
  SixTCell cell;
  cell.break_pullup_a();
  EXPECT_TRUE(cell.write_cycle(true, bitline_conditioning(true, false), 0,
                               kRetention));
  EXPECT_TRUE(cell.read_cycle(1, kRetention));
}

TEST(SixTCell, OpenPullupValueDecaysAfterRetention) {
  SixTCell cell;
  cell.break_pullup_a();
  EXPECT_TRUE(cell.write_cycle(true, bitline_conditioning(true, false), 0,
                               kRetention));
  EXPECT_TRUE(cell.read_cycle(kRetention - 1, kRetention));   // still holds
  EXPECT_FALSE(cell.read_cycle(kRetention + 1, kRetention));  // decayed
}

TEST(SixTCell, HealthyCellRetainsIndefinitely) {
  SixTCell cell;
  EXPECT_TRUE(cell.write_cycle(true, bitline_conditioning(true, false), 0,
                               kRetention));
  EXPECT_TRUE(cell.read_cycle(kRetention * 1000, kRetention));
}

TEST(SixTCell, OppositeSidePullupHandlesZero) {
  // DRF on the '0'-storing side: node B's pull-up is open, so the cell
  // cannot *hold* 0; NWRC toward 0 fails.
  SixTCell cell;
  cell.break_pullup_b();
  EXPECT_TRUE(cell.write_cycle(true, bitline_conditioning(true, false), 0,
                               kRetention));
  EXPECT_FALSE(cell.write_cycle(false, bitline_conditioning(false, true), 1,
                                kRetention));
  EXPECT_TRUE(cell.read_cycle(2, kRetention));
  // Normal write of 0 succeeds but decays.
  EXPECT_TRUE(cell.write_cycle(false, bitline_conditioning(false, false), 3,
                               kRetention));
  EXPECT_FALSE(cell.read_cycle(4, kRetention));  // holds 0 for now
  EXPECT_TRUE(cell.read_cycle(4 + kRetention, kRetention));  // decayed to 1
}

TEST(SixTCell, RewriteRefreshesRetentionClock) {
  SixTCell cell;
  cell.break_pullup_a();
  EXPECT_TRUE(cell.write_cycle(true, bitline_conditioning(true, false), 0,
                               kRetention));
  // Refresh just before decay; the clock restarts.
  EXPECT_TRUE(cell.write_cycle(true, bitline_conditioning(true, false),
                               kRetention - 1, kRetention));
  EXPECT_TRUE(cell.read_cycle(2 * kRetention - 2, kRetention));
  EXPECT_FALSE(cell.read_cycle(2 * kRetention, kRetention));
}

TEST(Bitlines, ConditioningMatchesFigureSix) {
  const auto normal_w1 = bitline_conditioning(true, false);
  EXPECT_EQ(normal_w1.bl, BitlineState::driven_vcc);
  EXPECT_EQ(normal_w1.blb, BitlineState::driven_gnd);

  const auto nwrc_w1 = bitline_conditioning(true, true);
  EXPECT_EQ(nwrc_w1.bl, BitlineState::float_gnd);
  EXPECT_EQ(nwrc_w1.blb, BitlineState::driven_gnd);

  const auto nwrc_w0 = bitline_conditioning(false, true);
  EXPECT_EQ(nwrc_w0.bl, BitlineState::driven_gnd);
  EXPECT_EQ(nwrc_w0.blb, BitlineState::float_gnd);
}

// ------------------------------------------------------------------ Timing

TEST(Timing, CycleCounterTotals) {
  CycleCounter counter;
  counter.add_cycles(100);
  counter.add_pause_ns(500);
  ClockDomain clock{10};
  EXPECT_EQ(counter.total_ns(clock), 1'500u);
}

TEST(Timing, DefaultClockIsTenNs) {
  ClockDomain clock;
  EXPECT_EQ(clock.period_ns, 10u);
}

}  // namespace
}  // namespace fastdiag::sram
