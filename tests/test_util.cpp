// Unit tests for src/util: BitVector, Rng, TablePrinter, formatting, CLI.
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "util/bitvec.h"
#include "util/cli.h"
#include "util/format.h"
#include "util/require.h"
#include "util/rng.h"
#include "util/table.h"

namespace fastdiag {
namespace {

// ---------------------------------------------------------------- BitVector

TEST(BitVector, DefaultIsEmpty) {
  BitVector v;
  EXPECT_EQ(v.width(), 0u);
  EXPECT_TRUE(v.empty());
}

TEST(BitVector, ConstructsWithFill) {
  BitVector zeros(100, false);
  BitVector ones(100, true);
  EXPECT_EQ(zeros.popcount(), 0u);
  EXPECT_EQ(ones.popcount(), 100u);
}

TEST(BitVector, SetAndGetRoundTrip) {
  BitVector v(130);
  v.set(0, true);
  v.set(64, true);
  v.set(129, true);
  EXPECT_TRUE(v.get(0));
  EXPECT_TRUE(v.get(64));
  EXPECT_TRUE(v.get(129));
  EXPECT_FALSE(v.get(1));
  EXPECT_EQ(v.popcount(), 3u);
}

TEST(BitVector, OutOfRangeThrows) {
  BitVector v(8);
  EXPECT_THROW((void)v.get(8), std::out_of_range);
  EXPECT_THROW(v.set(100, true), std::out_of_range);
}

TEST(BitVector, FromStringMsbFirst) {
  const auto v = BitVector::from_string("100");
  EXPECT_EQ(v.width(), 3u);
  EXPECT_TRUE(v.get(2));
  EXPECT_FALSE(v.get(1));
  EXPECT_FALSE(v.get(0));
}

TEST(BitVector, FromStringRejectsJunk) {
  EXPECT_THROW((void)BitVector::from_string("10x"), std::invalid_argument);
}

TEST(BitVector, ToStringRoundTrip) {
  const std::string s = "1011001110001111";
  EXPECT_EQ(BitVector::from_string(s).to_string(), s);
}

TEST(BitVector, FromValue) {
  const auto v = BitVector::from_value(8, 0xA5);
  EXPECT_EQ(v.to_value(), 0xA5u);
  EXPECT_EQ(v.to_string(), "10100101");
}

TEST(BitVector, FromValueAtAndBeyondWordWidth) {
  // Regression: the width-64 precondition check used to shift a uint64_t
  // by 64 (undefined behaviour).  Full-word and wider-than-word widths are
  // well-defined: value bits land in [0, 64), upper bits zero-fill.
  const auto full = BitVector::from_value(64, ~std::uint64_t{0});
  EXPECT_EQ(full.popcount(), 64u);
  EXPECT_EQ(full.to_value(), ~std::uint64_t{0});

  const auto wide = BitVector::from_value(70, ~std::uint64_t{0});
  EXPECT_EQ(wide.popcount(), 64u);
  EXPECT_FALSE(wide.get(69));

  // Bits of value above the width are dropped, not diagnosed.
  EXPECT_EQ(BitVector::from_value(2, 0xF).to_string(), "11");
}

TEST(BitVector, InvertedFlipsEveryBitAndKeepsWidth) {
  auto v = BitVector::from_string("1100");
  const auto inv = v.inverted();
  EXPECT_EQ(inv.to_string(), "0011");
  EXPECT_EQ(inv.width(), 4u);
}

TEST(BitVector, InvertedTrimsPaddingBits) {
  // Width not a multiple of 64: inversion must not set bits beyond width.
  BitVector v(70, false);
  const auto inv = v.inverted();
  EXPECT_EQ(inv.popcount(), 70u);
  EXPECT_EQ(inv.inverted().popcount(), 0u);
}

TEST(BitVector, EqualityIncludesWidth) {
  EXPECT_NE(BitVector(4, false), BitVector(5, false));
  EXPECT_EQ(BitVector::from_string("101"), BitVector::from_value(3, 5));
}

TEST(BitVector, XorAndOr) {
  const auto a = BitVector::from_string("1100");
  const auto b = BitVector::from_string("1010");
  EXPECT_EQ((a ^ b).to_string(), "0110");
  EXPECT_EQ((a & b).to_string(), "1000");
  EXPECT_EQ((a | b).to_string(), "1110");
}

TEST(BitVector, WidthMismatchThrows) {
  EXPECT_THROW((void)(BitVector(4) ^ BitVector(5)), std::invalid_argument);
}

TEST(BitVector, LowBits) {
  const auto v = BitVector::from_string("110101");
  EXPECT_EQ(v.low_bits(3).to_string(), "101");
  EXPECT_THROW((void)v.low_bits(7), std::invalid_argument);
}

TEST(BitVector, ResizeClearsNewBits) {
  auto v = BitVector::from_string("111");
  v.resize(6);
  EXPECT_EQ(v.to_string(), "000111");
  v.resize(2);
  EXPECT_EQ(v.to_string(), "11");
}

TEST(BitVector, FillSetsEveryBit) {
  BitVector v(66);
  v.fill(true);
  EXPECT_EQ(v.popcount(), 66u);
  v.fill(false);
  EXPECT_EQ(v.popcount(), 0u);
}

// ---------------------------------------------------------------------- Rng

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) {
    any_diff |= (a.next_u64() != b.next_u64());
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform(17), 17u);
  }
}

TEST(Rng, UniformZeroBoundThrows) {
  Rng rng(7);
  EXPECT_THROW((void)rng.uniform(0), std::invalid_argument);
}

TEST(Rng, UniformInInclusiveRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_in(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRoughlyCalibrated) {
  Rng rng(13);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    hits += rng.bernoulli(0.25) ? 1 : 0;
  }
  const double rate = static_cast<double>(hits) / trials;
  EXPECT_NEAR(rate, 0.25, 0.02);
}

TEST(Rng, SampleWithoutReplacementIsDistinct) {
  Rng rng(17);
  const auto sample = rng.sample_without_replacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<std::uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (const auto v : sample) {
    EXPECT_LT(v, 100u);
  }
}

TEST(Rng, SampleWholePopulation) {
  Rng rng(19);
  const auto sample = rng.sample_without_replacement(10, 10);
  std::set<std::uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(Rng, SampleTooLargeThrows) {
  Rng rng(21);
  EXPECT_THROW((void)rng.sample_without_replacement(5, 6),
               std::invalid_argument);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.fork();
  // The child stream must not simply mirror the parent.
  bool any_diff = false;
  for (int i = 0; i < 8; ++i) {
    any_diff |= (parent.next_u64() != child.next_u64());
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = v;
  rng.shuffle(shuffled);
  std::multiset<int> a(v.begin(), v.end()), b(shuffled.begin(),
                                              shuffled.end());
  EXPECT_EQ(a, b);
}

// ------------------------------------------------------------------- Table

TEST(Table, RendersHeadersAndRows) {
  TablePrinter t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "22"});
  const auto s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, RowArityMismatchThrows) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, TitleAndNotesAppear) {
  TablePrinter t({"col"});
  t.set_title("My Title");
  t.add_row({"x"});
  t.add_note("footnote text");
  const auto s = t.to_string();
  EXPECT_NE(s.find("My Title"), std::string::npos);
  EXPECT_NE(s.find("footnote text"), std::string::npos);
}

TEST(Table, EmptyHeaderListThrows) {
  EXPECT_THROW(TablePrinter t({}), std::invalid_argument);
}

// -------------------------------------------------------------- Formatting

TEST(Format, CountInsertsSeparators) {
  EXPECT_EQ(fmt_count(0), "0");
  EXPECT_EQ(fmt_count(999), "999");
  EXPECT_EQ(fmt_count(1000), "1,000");
  EXPECT_EQ(fmt_count(1234567), "1,234,567");
}

TEST(Format, PercentFromFraction) {
  EXPECT_EQ(fmt_percent(0.5), "50.0%");
  EXPECT_EQ(fmt_percent(1.0, 0), "100%");
}

TEST(Format, NsAdaptiveUnits) {
  EXPECT_EQ(fmt_ns(12), "12 ns");
  EXPECT_EQ(fmt_ns(1500), "1.50 us");
  EXPECT_EQ(fmt_ns(9984400), "9.98 ms");
  EXPECT_EQ(fmt_ns(2e9), "2.000 s");
}

TEST(Format, Ratio) { EXPECT_EQ(fmt_ratio(84.37), "84.4x"); }

// --------------------------------------------------------------------- CLI

TEST(Cli, ParsesSpaceAndEqualsForms) {
  const char* argv[] = {"prog", "--words", "512", "--bits=100"};
  ArgParser p(4, argv);
  EXPECT_EQ(p.get_u64("words", 0, ""), 512u);
  EXPECT_EQ(p.get_u64("bits", 0, ""), 100u);
  p.finish();
}

TEST(Cli, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  ArgParser p(1, argv);
  EXPECT_EQ(p.get_u64("words", 64, ""), 64u);
  EXPECT_EQ(p.get_string("name", "m0", ""), "m0");
  EXPECT_DOUBLE_EQ(p.get_double("rate", 0.01, ""), 0.01);
  EXPECT_FALSE(p.get_flag("verbose", ""));
}

TEST(Cli, FlagPresence) {
  const char* argv[] = {"prog", "--verbose"};
  ArgParser p(2, argv);
  EXPECT_TRUE(p.get_flag("verbose", ""));
  p.finish();
}

TEST(Cli, UnknownOptionRejectedByFinish) {
  const char* argv[] = {"prog", "--typo", "3"};
  ArgParser p(3, argv);
  (void)p.get_u64("words", 64, "");
  EXPECT_THROW(p.finish(), std::invalid_argument);
}

TEST(Cli, BadIntegerThrows) {
  const char* argv[] = {"prog", "--words", "abc"};
  ArgParser p(3, argv);
  EXPECT_THROW((void)p.get_u64("words", 0, ""), std::invalid_argument);
}

TEST(Cli, HelpDetected) {
  const char* argv[] = {"prog", "--help"};
  ArgParser p(2, argv);
  EXPECT_TRUE(p.help_requested());
}

TEST(Cli, PositionalCollected) {
  const char* argv[] = {"prog", "input.txt", "--n", "4", "more"};
  ArgParser p(5, argv);
  (void)p.get_u64("n", 0, "");
  ASSERT_EQ(p.positional().size(), 2u);
  EXPECT_EQ(p.positional()[0], "input.txt");
  EXPECT_EQ(p.positional()[1], "more");
}

// ----------------------------------------------------------------- require

TEST(Require, ThrowsMatchingTypes) {
  EXPECT_NO_THROW(require(true, "ok"));
  EXPECT_THROW(require(false, "bad"), std::invalid_argument);
  EXPECT_THROW(require_in_range(false, "bad"), std::out_of_range);
  EXPECT_THROW(ensure(false, "bad"), std::logic_error);
}

}  // namespace
}  // namespace fastdiag
