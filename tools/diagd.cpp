// diagd — the long-running fleet diagnosis job server.
//
// Two transports share one JobServer (and therefore one warm
// ClassifierCache):
//
//   diagd                       # pipe mode: frames on stdin/stdout
//   diagd --socket /tmp/diagd   # AF_UNIX socket, thread per client
//
// Pipe mode is what a supervisor (or the CI smoke test) spawns per
// machine; socket mode lets many local clients share the same warm cache.
// --load-cache starts the server warm from a "FDCC" blob saved by a
// previous run, so the first classification job replays zero March probes.
#include <cstdio>
#include <exception>
#include <string>
#include <unistd.h>

#include "service/server.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace fastdiag;

  ArgParser args(argc, argv);
  std::string socket_path;
  std::uint64_t cache_max = 0;
  std::string cache_dir;
  std::string load_cache;
  // The value getters throw on malformed numerics (e.g. --cache-max=abc),
  // so the whole parse lives inside the guard — a bad flag must end in a
  // usage message and exit 2, never an uncaught-exception terminate.
  try {
    socket_path = args.get_string(
        "socket", "", "serve an AF_UNIX socket at this path instead of stdio");
    cache_max = args.get_u64(
        "cache-max", 0, "classifier cache entry bound (0 = unbounded)");
    cache_dir = args.get_string(
        "cache-dir", ".",
        "directory client save_cache/load_cache requests are confined to "
        "(empty = refuse them)");
    load_cache = args.get_string(
        "load-cache", "", "warm the classifier cache from this FDCC file");
    if (args.help_requested()) {
      args.print_help(
          "fleet diagnosis job server (frames per service/protocol.h)");
      return 0;
    }
    args.finish();
  } catch (const std::exception& error) {
    std::fprintf(stderr, "diagd: %s\nrun with --help for usage\n",
                 error.what());
    return 2;
  }

  service::ServerOptions options;
  options.cache_max_entries = static_cast<std::size_t>(cache_max);
  options.cache_dir = cache_dir;
  service::JobServer server(options);

  if (!load_cache.empty()) {
    const long imported = server.load_cache_file(load_cache);
    if (imported < 0) {
      std::fprintf(stderr, "diagd: cannot import cache from %s\n",
                   load_cache.c_str());
      return 1;
    }
    std::fprintf(stderr, "diagd: warm start, %ld cached classifiers\n",
                 imported);
  }

  if (!socket_path.empty()) {
    std::fprintf(stderr, "diagd: serving %s\n", socket_path.c_str());
    if (!server.serve_socket(socket_path)) {
      std::fprintf(stderr, "diagd: cannot serve socket %s\n",
                   socket_path.c_str());
      return 1;
    }
  } else {
    // Pipe mode: the protocol owns stdout, diagnostics go to stderr.
    server.serve_connection(STDIN_FILENO, STDOUT_FILENO);
  }

  std::fprintf(stderr, "diagd: drained, final stats %s\n",
               server.stats_json().c_str());
  return 0;
}
